#include "os/pebs.hh"

#include <algorithm>

#include "common/logging.hh"
#include "os/costs.hh"

namespace m5 {

MemtisDaemon::MemtisDaemon(const PebsConfig &cfg, PageTable &pt,
                           KernelLedger &ledger, MigrationEngine &engine)
    : cfg_(cfg), pt_(pt), ledger_(ledger), engine_(engine),
      hot_threshold_(cfg.initial_hot_threshold),
      next_wake_(cfg.cooling_interval),
      hot_list_(cfg.hot_list_capacity)
{
    m5_assert(cfg.sample_period >= 1, "PEBS sample period must be >= 1");
    m5_assert(cfg.buffer_entries >= 1, "PEBS buffer must hold a record");
    buffer_.reserve(cfg.buffer_entries);
}

Tick
MemtisDaemon::onLlcMiss(Vpn vpn, Tick now)
{
    if (++miss_counter_ % cfg_.sample_period != 0)
        return 0;
    ++samples_taken_;
    buffer_.push_back(vpn);
    if (buffer_.size() < cfg_.buffer_entries)
        return 0;
    return drainBuffer(now);
}

Tick
MemtisDaemon::drainBuffer(Tick now)
{
    ++interrupts_;
    Cycles cycles = cost::kPebsInterrupt +
        cost::kPebsSampleProcess * static_cast<Cycles>(buffer_.size());
    ledger_.charge(KernelWork::HintFault, cycles);
    Tick elapsed = cyclesToNs(cycles);

    // Refill the promotion token bucket.
    tokens_ = std::min(cfg_.promote_rate_pages_per_s,
        tokens_ + static_cast<double>(now - token_time_) * 1e-9 *
                  cfg_.promote_rate_pages_per_s);
    token_time_ = now;

    std::size_t issued = 0;
    for (Vpn vpn : buffer_) {
        const std::uint32_t c = ++counts_[vpn];
        if (c < hot_threshold_)
            continue;
        const Pte &e = pt_.pte(vpn);
        if (!e.valid || e.node == kNodeDdr)
            continue;
        hot_list_.add(e.pfn);
        if (cfg_.migrate && tokens_ >= 1.0) {
            tokens_ -= 1.0;
            elapsed += engine_.promote(vpn, now + elapsed).busy;
            ++issued;
        }
    }
    engine_.noteBatch(issued);
    buffer_.clear();
    return elapsed;
}

void
MemtisDaemon::cool()
{
    // Memtis-style cooling: halve every estimate so stale hotness fades.
    for (auto it = counts_.begin(); it != counts_.end();) {
        it->second /= 2;
        if (it->second == 0)
            it = counts_.erase(it);
        else
            ++it;
    }
}

void
MemtisDaemon::adaptThreshold()
{
    // Size the hot set to the fast tier: if more pages exceed the
    // threshold than DDR can hold, raise it; if far fewer, lower it.
    const std::size_t ddr_frames =
        engine_.ddrFreeFrames() + pt_.pagesOnNode(kNodeDdr);
    std::size_t hot = 0;
    for (const auto &[vpn, c] : counts_)
        hot += c >= hot_threshold_;
    if (hot > ddr_frames) {
        ++hot_threshold_;
    } else if (hot < ddr_frames / 2 && hot_threshold_ > 1) {
        --hot_threshold_;
    }
}

Tick
MemtisDaemon::wake(Tick now)
{
    cool();
    adaptThreshold();
    const Cycles cycles = cost::kDamonAggregatePerRegion +
        static_cast<Cycles>(counts_.size() / 8); // Histogram walk.
    ledger_.charge(KernelWork::DamonAggregate, cycles);
    next_wake_ = now + cfg_.cooling_interval;
    return cyclesToNs(cycles);
}

std::uint32_t
MemtisDaemon::estimate(Vpn vpn) const
{
    auto it = counts_.find(vpn);
    return it == counts_.end() ? 0 : it->second;
}

void
MemtisDaemon::registerStats(StatRegistry &reg) const
{
    reg.addCounter("os.pebs.samples", &samples_taken_);
    reg.addCounter("os.pebs.interrupts", &interrupts_);
}

} // namespace m5
