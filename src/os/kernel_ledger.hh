/**
 * @file
 * Per-category accounting of kernel CPU cycles.
 *
 * The paper pins the page-migration kernel work and one benchmark thread to
 * the same CPU core and measures kernel-cycle inflation (§4.2: ANB up to
 * 487%, DAMON up to 733%).  Every kernel activity in the model charges this
 * ledger; the CPU core model turns charged cycles into application-visible
 * time.
 */

#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hh"
#include "telemetry/registry.hh"

namespace m5 {

/** Categories of kernel work. */
enum class KernelWork : unsigned
{
    PteScan = 0,     //!< ANB unmap passes / DAMON PTE checks.
    TlbShootdown,    //!< IPI-based TLB invalidations.
    HintFault,       //!< NUMA hinting page faults.
    DamonAggregate,  //!< DAMON region aggregation / split / merge.
    Migration,       //!< migrate_pages() software overhead.
    ManagerUser,     //!< M5-manager user-space work (Elector, queries).
    Baseline,        //!< Kernel housekeeping unrelated to migration.
    NumCategories,
};

/** Human-readable category name. */
std::string kernelWorkName(KernelWork w);

/** Accumulates kernel cycles by category. */
class KernelLedger
{
  public:
    /** Charge cycles to a category. */
    void
    charge(KernelWork w, Cycles c)
    {
        cycles_[static_cast<unsigned>(w)] += c;
    }

    /** Cycles charged to one category. */
    Cycles
    category(KernelWork w) const
    {
        return cycles_[static_cast<unsigned>(w)];
    }

    /** Total cycles across all categories. */
    Cycles total() const;

    /** Total excluding the Baseline category (identification+migration). */
    Cycles totalOverhead() const;

    /** Cycles spent identifying hot pages (everything except Migration
     *  and Baseline) — the quantity §4.2 isolates by disabling
     *  migrate_pages(). */
    Cycles identificationCycles() const;

    /** Zero everything. */
    void reset() { cycles_.fill(0); }

    /** Register every category as an `os.kernel.<category>` counter. */
    void registerStats(StatRegistry &reg) const;

  private:
    std::array<Cycles,
               static_cast<unsigned>(KernelWork::NumCategories)> cycles_{};
};

} // namespace m5
