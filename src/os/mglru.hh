/**
 * @file
 * Multi-Generational LRU model.
 *
 * M5 relies on the kernel's MGLRU to pick demotion victims when the DDR
 * tier is full (§5.2).  This model keeps DDR-resident pages in G
 * generations: touched pages move to the youngest generation, aging demotes
 * whole generations in O(1), and victims are taken from the tail of the
 * oldest populated generation.
 *
 * Intrusive doubly-linked lists over the contiguous VPN space make every
 * operation O(1).
 */

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/types.hh"

namespace m5 {

/** Generational LRU over DDR-resident pages. */
class MgLru
{
  public:
    /**
     * @param num_pages Size of the VPN space.
     * @param num_gens Number of generations (kernel default is 4).
     */
    explicit MgLru(std::size_t num_pages, unsigned num_gens = 4);

    /** A page became DDR-resident: insert into the youngest generation. */
    void insert(Vpn vpn);

    /** A page left DDR (demoted / unmapped). */
    void remove(Vpn vpn);

    /** A DDR access was observed: refresh to the youngest generation. */
    void touch(Vpn vpn);

    /** Advance the clock: demote every generation by one (O(gens)). */
    void age();

    /**
     * Pop up to n victims from the oldest populated generations.
     * Victims are removed from the structure.
     */
    std::vector<Vpn> pickVictims(std::size_t n);

    /**
     * The page pickVictims(1) would pop, without removing it; nullopt
     * when empty.  Page exchange peeks its cold partner so an aborted
     * swap leaves the LRU untouched (docs/TOPOLOGY.md).
     */
    std::optional<Vpn> peekVictim() const;

    /**
     * Pop the coldest page satisfying `pred`, preserving LRU order among
     * the rest; nullopt when no tracked page qualifies.  Per-tenant DDR
     * caps demote a *same-tenant* victim (docs/MULTITENANT.md), so the
     * victim scan must be filterable.  O(tracked pages) worst case — in
     * practice the oldest generations are scanned first and the filter
     * matches early.
     */
    std::optional<Vpn>
    pickVictimWhere(const std::function<bool(Vpn)> &pred);

    /** The page pickVictimWhere(pred) would pop, without removing it. */
    std::optional<Vpn>
    peekVictimWhere(const std::function<bool(Vpn)> &pred) const;

    /** True if the page is tracked. */
    bool contains(Vpn vpn) const;

    /** Number of tracked pages. */
    std::size_t size() const { return size_; }

    /** Number of generations. */
    unsigned generations() const { return num_gens_; }

    /** Generation index of a tracked page (0 = youngest). */
    unsigned generationOf(Vpn vpn) const;

  private:
    static constexpr std::uint8_t kNotTracked = 0xff;

    std::size_t sentinel(unsigned gen) const { return num_pages_ + gen; }
    void unlink(std::size_t node);
    void pushHead(unsigned gen, std::size_t node);
    bool genEmpty(unsigned gen) const;

    std::size_t num_pages_;
    unsigned num_gens_;
    unsigned youngest_slot_ = 0; //!< Ring slot receiving touched pages.
    std::size_t size_ = 0;
    std::vector<std::uint32_t> next_;
    std::vector<std::uint32_t> prev_;
    std::vector<std::uint8_t> gen_;
};

/**
 * Per-tier generational LRUs for an N-tier topology.
 *
 * Every tier except the spill tier keeps its own MgLru over the pages it
 * currently hosts: the top tier's LRU supplies demotion/exchange victims
 * exactly as before, and intermediate tiers age independently so a
 * multi-hop demotion ladder always has a victim order.  The spill tier is
 * untracked — it can always absorb demotions, so it never needs victims.
 * With two tiers this collapses to the historical single DDR MgLru.
 */
class TierLrus
{
  public:
    /**
     * @param num_pages Size of the VPN space.
     * @param num_tiers Number of topology tiers (>= 2); tiers
     *        [0, num_tiers-1) are tracked.
     * @param num_gens Generations per tier LRU.
     */
    TierLrus(std::size_t num_pages, std::size_t num_tiers,
             unsigned num_gens = 4);

    /** True when the tier keeps an LRU (every tier but the spill). */
    bool tracked(NodeId node) const { return node + 1 < num_tiers_; }

    /** The LRU of a tracked tier. */
    MgLru &lru(NodeId node);
    const MgLru &lru(NodeId node) const;

    /** The top (fastest) tier's LRU — the historical DDR MgLru. */
    MgLru &top() { return lru(kNodeDdr); }
    const MgLru &top() const { return lru(kNodeDdr); }

    /** Page became resident on `node`: insert if the tier is tracked. */
    void insert(Vpn vpn, NodeId node);

    /** Page left `node` (migrated / unmapped); no-op if untracked. */
    void remove(Vpn vpn, NodeId node);

    /** Access observed to a page resident on `node`. */
    void touch(Vpn vpn, NodeId node);

    /** Advance every tracked tier's generation clock. */
    void age();

    /** Number of tracked tiers. */
    std::size_t trackedTiers() const { return lrus_.size(); }

  private:
    std::size_t num_tiers_;
    std::vector<std::unique_ptr<MgLru>> lrus_;
};

} // namespace m5
