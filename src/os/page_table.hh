/**
 * @file
 * Single-address-space page table for the simulated workload.
 *
 * The workload owns a contiguous virtual page range [0, numPages).  Each PTE
 * carries the bits the migration solutions depend on: `present` (cleared by
 * ANB to provoke hinting faults), `accessed` (set by page walks, sampled and
 * cleared by DAMON), `pinned` (Promoter must reject such pages, §5.2), and
 * the backing frame / tier node.
 */

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace m5 {

/** One page-table entry. */
struct Pte
{
    Pfn pfn = 0;
    NodeId node = kNodeDdr;
    bool valid = false;    //!< Mapping exists.
    bool present = true;   //!< Cleared by ANB's unmap pass.
    bool accessed = false; //!< Set by page walks; cleared by DAMON.
    bool pinned = false;   //!< DMA-pinned / node-bound; never migrated.
};

/** Flat page table over [0, numPages) VPNs with a PFN reverse map. */
class PageTable
{
  public:
    /** @param num_pages Size of the virtual page range. */
    explicit PageTable(std::size_t num_pages);

    /** Install a mapping vpn -> pfn on the given node. */
    void map(Vpn vpn, Pfn pfn, NodeId node);

    /** Move a mapping to a different frame/node (page migration). */
    void remap(Vpn vpn, Pfn new_pfn, NodeId new_node);

    /**
     * Swap the frames backing two mappings (page exchange): a and b
     * trade pfn + node atomically, keeping the reverse map and per-node
     * counts consistent.  A naive remap/remap pair would transiently
     * alias one frame to two VPNs and corrupt the reverse map.
     */
    void swapFrames(Vpn a, Vpn b);

    /** Mutable PTE access. */
    Pte &pte(Vpn vpn);

    /** Read-only PTE access. */
    const Pte &pte(Vpn vpn) const;

    /** The VPN mapped to a frame; numPages() if the frame is unmapped. */
    Vpn vpnOfPfn(Pfn pfn) const;

    /**
     * Hardware page-table walk: sets the accessed bit and returns the PFN.
     * The caller charges walk latency and handles non-present faults first.
     */
    Pfn walk(Vpn vpn);

    /** Number of virtual pages. */
    std::size_t numPages() const { return ptes_.size(); }

    /** Count of valid pages currently on the given node. */
    std::size_t pagesOnNode(NodeId node) const;

    /**
     * Record a store to a page.  The write generation is the
     * transactional migrator's race detector: a copy records the
     * generation when it starts, and any bump before validation means
     * a write raced the copy (docs/MIGRATION.md).  Lazily allocated so
     * non-transactional runs never touch the array.
     */
    void
    noteWrite(Vpn vpn)
    {
        if (write_gen_.empty())
            write_gen_.assign(ptes_.size(), 0);
        ++write_gen_[vpn];
    }

    /** Current write generation of a page (0 until first noteWrite). */
    std::uint32_t
    writeGen(Vpn vpn) const
    {
        return write_gen_.empty() ? 0 : write_gen_[vpn];
    }

  private:
    std::vector<Pte> ptes_;
    std::unordered_map<Pfn, Vpn> rmap_;
    //! Cached per-node residency counts, maintained by map/remap.
    std::vector<std::size_t> node_pages_;
    //! Per-page store counters for transactional-copy validation.
    std::vector<std::uint32_t> write_gen_;
};

} // namespace m5
