#include "os/txn_migrate.hh"

#include "common/logging.hh"
#include "telemetry/prof.hh"
#include "telemetry/trace.hh"

namespace m5 {

TransactionalMigrator::TransactionalMigrator(
    const TierTopology &topo, PageTable &pt, FrameAllocator &alloc,
    MemorySystem &mem, SetAssocCache &llc, Tlb &tlb, KernelLedger &ledger,
    TierLrus &lrus, Cycles software_per_page,
    std::vector<std::uint64_t> &moved_in,
    std::vector<std::uint64_t> &moved_out)
    : topo_(topo), pt_(pt), alloc_(alloc), mem_(mem), llc_(llc), tlb_(tlb),
      ledger_(ledger), lrus_(lrus), software_per_page_(software_per_page),
      moved_in_(moved_in), moved_out_(moved_out),
      shadow_pfn_(pt.numPages(), kNoShadowPfn),
      shadow_node_(pt.numPages(), 0), shadow_gen_(pt.numPages(), 0),
      abort_count_(pt.numPages(), 0), shadow_count_(topo.numTiers(), 0),
      reclaim_q_(topo.numTiers())
{
}

bool
TransactionalMigrator::validate(Vpn vpn, std::uint32_t copy_start_gen) const
{
    PROF_SCOPE("os.migration.txn_validate");
    return pt_.writeGen(vpn) == copy_start_gen;
}

Tick
TransactionalMigrator::noteAbort(Vpn vpn, bool partner_raced)
{
    // The unwind walked the rmap and dropped the extra refcount, like a
    // legacy EBUSY abort; the copy traffic itself was already issued
    // (that is the transactional gamble — wasted bandwidth, not a
    // stalled application).
    ledger_.charge(KernelWork::Migration, cost::kMigrateAbort);
    ++stats_.aborts;
    if (partner_raced)
        ++stats_.abort_partner_race;
    else
        ++stats_.abort_src_race;
    if (abort_count_[vpn] < kDegradeAborts) {
        if (++abort_count_[vpn] == kDegradeAborts)
            ++stats_.degraded_pages;
    }
    return cyclesToNs(cost::kMigrateAbort);
}

TxnMoveResult
TransactionalMigrator::moveTxn(Vpn vpn, NodeId dst_node, Tick now)
{
    Pte &e = pt_.pte(vpn);
    const NodeId src_node = e.node;
    const Pfn src_pfn = e.pfn;
    const std::uint32_t copy_gen = pt_.writeGen(vpn);

    const TenantId owner = tenants_ ? tenants_->tenantOf(vpn) : kNoTenant;
    auto dst = tenants_ ? alloc_.allocateFor(dst_node, owner)
                        : alloc_.allocate(dst_node);
    m5_assert(dst.has_value(), "moveTxn without a free frame on node %u",
              dst_node);

    // Flush cached lines so the copy below reads current data.  The
    // page STAYS mapped: no shootdown yet — that is the transaction's
    // whole point (the application keeps hitting the source frame).
    Tick elapsed = 0;
    for (Addr wb : llc_.invalidatePage(src_pfn))
        mem_.access(wb, true, now);

    // Same streamed 64-word copy as the legacy path, so tier counters
    // and the CXL controller observe identical traffic.
    const Addr src_base = pageBase(src_pfn);
    const Addr dst_base = pageBase(*dst);
    for (unsigned w = 0; w < kWordsPerPage; ++w) {
        const Addr off = static_cast<Addr>(w) * kWordBytes;
        mem_.access(src_base + off, false, now + elapsed);
        mem_.access(dst_base + off, true, now + elapsed);
    }
    elapsed += topo_.edge(src_node, dst_node).pageCopyTime();

    // An injected `copy_race` is a store landing inside the copy
    // window; validation sees the generation bump just like a real one.
    (void)injectRace(vpn, now + elapsed);

    if (!validate(vpn, copy_gen)) {
        // Abort: the copied bytes are stale.  Unwind the destination
        // frame; the page never left its source, nothing to roll back.
        // The racing store also kills any live shadow — the page's
        // content just diverged from it (only possible when the source
        // is the top tier, where shadowed pages live).
        if (tenants_)
            alloc_.freeFor(dst_node, *dst, owner);
        else
            alloc_.free(dst_node, *dst);
        elapsed += invalidateShadow(vpn, now + elapsed);
        elapsed += noteAbort(vpn, /*partner_raced=*/false);
        TRACE_SPAN(TraceCat::Migrate, now, elapsed, "migration.txn",
                   TraceArgs().u("page", vpn).s("result", "abort"));
        return {false, elapsed};
    }

    // Commit: unmap only now.  The shootdown the legacy path pays
    // before the copy moves after validation.
    tlb_.shootdown(static_cast<Vpn>(vpn));
    ledger_.charge(KernelWork::TlbShootdown, cost::kTlbShootdown);

    // A shadowed page leaving the top tier through the general move
    // path invalidates its (now duplicated) shadow first.
    if (src_node == topo_.top())
        elapsed += invalidateShadow(vpn, now + elapsed);

    lrus_.remove(vpn, src_node);
    pt_.remap(vpn, *dst, dst_node);
    if (dst_node == topo_.top() && src_node != topo_.top()) {
        // Non-exclusive tiering: the source frame stays allocated as a
        // shadow so a still-clean demotion is a PTE flip (freeDemote).
        shadow_pfn_[vpn] = src_pfn;
        shadow_node_[vpn] = src_node;
        shadow_gen_[vpn] = pt_.writeGen(vpn);
        ++shadow_count_[src_node];
        reclaim_q_[src_node].emplace_back(vpn, src_pfn);
        ++stats_.shadow_retained;
    } else {
        if (tenants_)
            alloc_.freeFor(src_node, src_pfn, owner);
        else
            alloc_.free(src_node, src_pfn);
    }
    lrus_.insert(vpn, dst_node);
    ++moved_out_[src_node];
    ++moved_in_[dst_node];
    if (tenants_) {
        if (dst_node == topo_.top())
            tenants_->counters(owner).promoted += 1;
        else if (src_node == topo_.top())
            tenants_->counters(owner).demoted += 1;
    }

    ledger_.charge(KernelWork::Migration, software_per_page_);
    elapsed += cyclesToNs(software_per_page_);
    ++stats_.commits;
    TRACE_SPAN(TraceCat::Migrate, now, elapsed, "migration.txn",
               TraceArgs().u("page", vpn)
                          .s("result", "commit")
                          .u("src_pfn", src_pfn)
                          .u("dst_pfn", *dst));
    return {true, elapsed};
}

Tick
TransactionalMigrator::freeDemote(Vpn vpn, Tick now)
{
    const Pte &e = pt_.pte(vpn);
    m5_assert(hasShadow(vpn) && e.node == topo_.top(),
              "freeDemote of vpn %lu without a live shadow",
              static_cast<unsigned long>(vpn));
    m5_assert(shadow_gen_[vpn] == pt_.writeGen(vpn),
              "freeDemote of vpn %lu with a stale shadow",
              static_cast<unsigned long>(vpn));
    const NodeId src_node = e.node;
    const Pfn src_pfn = e.pfn;
    const NodeId dst_node = shadow_node_[vpn];
    const Pfn dst_pfn = shadow_pfn_[vpn];

    // The page is clean by construction (a store would have invalidated
    // the shadow), so the flush writes nothing back; the lines still
    // leave the cache because the physical address changes.
    for (Addr wb : llc_.invalidatePage(src_pfn))
        mem_.access(wb, true, now);

    tlb_.shootdown(static_cast<Vpn>(vpn));
    ledger_.charge(KernelWork::TlbShootdown, cost::kTlbShootdown);

    lrus_.remove(vpn, src_node);
    pt_.remap(vpn, dst_pfn, dst_node);
    const TenantId owner = tenants_ ? tenants_->tenantOf(vpn) : kNoTenant;
    if (tenants_)
        alloc_.freeFor(src_node, src_pfn, owner);
    else
        alloc_.free(src_node, src_pfn);
    lrus_.insert(vpn, dst_node);
    // The shadow became the primary copy.
    shadow_pfn_[vpn] = kNoShadowPfn;
    --shadow_count_[dst_node];
    ++moved_out_[src_node];
    ++moved_in_[dst_node];
    if (tenants_)
        tenants_->counters(owner).demoted += 1;

    // Zero copy traffic, zero edge time: only the PTE-flip software
    // cost — the non-exclusive-tiering payoff.
    ledger_.charge(KernelWork::Migration, cost::kDemoteFreeSoftware);
    const Tick elapsed = cyclesToNs(cost::kDemoteFreeSoftware);
    ++stats_.demoted_free;
    TRACE_EVENT(TraceCat::Migrate, now + elapsed, "migration.demote_free",
                TraceArgs().u("page", vpn)
                           .u("src_pfn", src_pfn)
                           .u("dst_pfn", dst_pfn)
                           .u("busy", elapsed));
    return elapsed;
}

Tick
TransactionalMigrator::releaseShadow(Vpn vpn, Tick now, bool reclaimed)
{
    const NodeId node = shadow_node_[vpn];
    alloc_.free(node, shadow_pfn_[vpn]);
    shadow_pfn_[vpn] = kNoShadowPfn;
    --shadow_count_[node];
    if (reclaimed)
        ++stats_.shadow_reclaimed;
    else
        ++stats_.shadow_invalidated;
    ledger_.charge(KernelWork::Migration, cost::kShadowRelease);
    const Tick elapsed = cyclesToNs(cost::kShadowRelease);
    TRACE_EVENT(TraceCat::Migrate, now + elapsed, "migration.shadow_drop",
                TraceArgs().u("page", vpn)
                           .s("reason", reclaimed ? "reclaim" : "write"));
    return elapsed;
}

bool
TransactionalMigrator::reclaimOne(NodeId node, Tick now)
{
    auto &q = reclaim_q_[node];
    while (!q.empty()) {
        const auto [vpn, pfn] = q.front();
        q.pop_front();
        // Lazy skip: the shadow this entry named was invalidated (or
        // already reclaimed, or replaced by a newer retention).
        if (shadow_pfn_[vpn] != pfn)
            continue;
        (void)releaseShadow(vpn, now, /*reclaimed=*/true);
        return true;
    }
    return false;
}

void
TransactionalMigrator::registerStats(StatRegistry &reg) const
{
    reg.addCounter("os.migration.txn_commits", &stats_.commits);
    reg.addCounter("os.migration.txn_aborts", &stats_.aborts);
    reg.addCounter("os.migration.txn_abort_src_race",
                   &stats_.abort_src_race);
    reg.addCounter("os.migration.txn_abort_partner_race",
                   &stats_.abort_partner_race);
    reg.addCounter("os.migration.txn_degraded", &stats_.degraded_pages);
    reg.addCounter("os.migration.shadow_retained", &stats_.shadow_retained);
    reg.addCounter("os.migration.shadow_invalidated",
                   &stats_.shadow_invalidated);
    reg.addCounter("os.migration.shadow_reclaimed",
                   &stats_.shadow_reclaimed);
    reg.addCounter("os.migration.demoted_free", &stats_.demoted_free);
}

} // namespace m5
