/**
 * @file
 * Common interface for page-migration daemons (ANB, DAMON, M5-manager).
 *
 * The simulation core wakes a daemon at its requested times; the daemon
 * returns the kernel/user CPU time it consumed, which the core serializes
 * with application execution on the shared CPU core (the paper pins the
 * migration processes and a benchmark thread to one core, §6).
 */

#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/types.hh"

namespace m5 {

/**
 * Accumulates identified hot pages in identification order, deduplicated —
 * the §4.1 (S1) "hot-page list" instrumentation used to evaluate solutions
 * without migrating.
 */
class HotPageList
{
  public:
    /** @param capacity Maximum pages kept (paper: up to 128K). */
    explicit HotPageList(std::size_t capacity) : capacity_(capacity) {}

    /** Record a page; ignored if already present or at capacity. */
    void
    add(Pfn pfn)
    {
        if (pages_.size() >= capacity_ || !seen_.insert(pfn).second)
            return;
        pages_.push_back(pfn);
    }

    /** Identified pages in identification order. */
    const std::vector<Pfn> &pages() const { return pages_; }

    /** True once capacity is reached. */
    bool full() const { return pages_.size() >= capacity_; }

    /** Number of recorded pages. */
    std::size_t size() const { return pages_.size(); }

    /** Clear all state. */
    void
    reset()
    {
        pages_.clear();
        seen_.clear();
    }

  private:
    std::size_t capacity_;
    std::vector<Pfn> pages_;
    std::unordered_set<Pfn> seen_;
};

/** A page-migration solution driven by periodic wakeups. */
class PolicyDaemon
{
  public:
    virtual ~PolicyDaemon() = default;

    /** Next time this daemon wants to run. */
    virtual Tick nextWake() const = 0;

    /**
     * Run the daemon's periodic work.
     * @param now Current time.
     * @return CPU time consumed on the shared core.
     */
    virtual Tick wake(Tick now) = 0;

    /**
     * Access-path hook: a non-present page was touched (hinting fault).
     * @return Extra CPU time consumed handling it.
     */
    virtual Tick onHintFault(Vpn vpn, Tick now)
    {
        (void)vpn;
        (void)now;
        return 0;
    }

    /** Daemon name for reports. */
    virtual std::string name() const = 0;

    /** The hot pages identified so far (record-only instrumentation). */
    virtual const HotPageList &hotPages() const = 0;
};

} // namespace m5
