#include "os/migration.hh"

#include "common/logging.hh"
#include "os/costs.hh"
#include "telemetry/prof.hh"
#include "telemetry/trace.hh"

namespace m5 {

const char *
MigrateResult::reason() const
{
    switch (outcome) {
      case MigrateOutcome::Done: return "ok";
      case MigrateOutcome::TransientBusy: return "busy";
      case MigrateOutcome::TransientNoFrame: return "no_frame";
      case MigrateOutcome::RejectedPinned: return "pinned";
      case MigrateOutcome::RejectedNotCxl: return "not_cxl";
      case MigrateOutcome::FailedCapacity: return "failed_capacity";
      case MigrateOutcome::ExchangedInstead: return "exchanged";
      case MigrateOutcome::PlacedLowerTier: return "placed_lower";
      case MigrateOutcome::AbortedRace: return "copy_race";
      default:
        m5_panic("bad MigrateOutcome %u",
                 static_cast<unsigned>(outcome));
    }
}

MigrationEngine::MigrationEngine(const TierTopology &topo, PageTable &pt,
                                 FrameAllocator &alloc, MemorySystem &mem,
                                 SetAssocCache &llc, Tlb &tlb,
                                 KernelLedger &ledger, TierLrus &lrus,
                                 const MigrationCosts &costs)
    : topo_(topo), pt_(pt), alloc_(alloc), mem_(mem), llc_(llc), tlb_(tlb),
      ledger_(ledger), lrus_(lrus), costs_(costs),
      moved_in_(topo.numTiers(), 0), moved_out_(topo.numTiers(), 0)
{
    m5_assert(topo_.numTiers() == mem_.tiers(),
              "topology (%zu tiers) does not match the memory system "
              "(%zu tiers)",
              topo_.numTiers(), mem_.tiers());
}

std::size_t
MigrationEngine::ddrFreeFrames() const
{
    return alloc_.freeFrames(topo_.top());
}

void
MigrationEngine::setTxnEnabled(bool on)
{
    if (!on) {
        txn_.reset();
        return;
    }
    if (txn_)
        return;
    txn_ = std::make_unique<TransactionalMigrator>(
        topo_, pt_, alloc_, mem_, llc_, tlb_, ledger_, lrus_,
        costs_.software_per_page, moved_in_, moved_out_);
    txn_->attachFaults(faults_);
    txn_->attachTenants(tenants_);
}

bool
MigrationEngine::canPromote(Vpn vpn) const
{
    const Pte &e = pt_.pte(vpn);
    return e.valid && !e.pinned && topo_.isLower(e.node);
}

std::optional<NodeId>
MigrationEngine::bestFitBelowTop(NodeId src) const
{
    // Fastest-first scan over the intermediate tiers: the best fit is
    // the fastest non-top tier with a free frame that still improves on
    // the page's current placement.  The spill tier is excluded — a
    // "promotion" into the spill tier would be a no-op or a demotion.
    for (NodeId n = topo_.top() + 1; n < topo_.spill(); ++n) {
        if (n >= src)
            break;
        if (alloc_.freeFrames(n) > 0)
            return n;
    }
    return std::nullopt;
}

Tick
MigrationEngine::moveTo(Vpn vpn, NodeId dst_node, Tick now)
{
    Pte &e = pt_.pte(vpn);
    const NodeId src_node = e.node;
    const Pfn src_pfn = e.pfn;

    // With tenants attached, top-tier frames are charged to the page's
    // owner; promote() guarantees the owner is under its cap by the time
    // the move commits, so a nullopt here is a bug either way.
    const TenantId owner =
        tenants_ ? tenants_->tenantOf(vpn) : kNoTenant;
    auto dst = tenants_ ? alloc_.allocateFor(dst_node, owner)
                        : alloc_.allocate(dst_node);
    m5_assert(dst.has_value(), "moveTo without a free frame on node %u",
              dst_node);

    // Flush the page's cached lines; dirty data returns to the source
    // frame before the copy (posted writes — bandwidth, not latency).
    Tick elapsed = 0;
    // A degraded/legacy move off the top tier may still carry a shadow
    // from an earlier transactional promotion; drop it before the page
    // leaves (the shadow would otherwise go stale silently).
    if (txn_ && src_node == topo_.top())
        elapsed += txn_->invalidateShadow(vpn, now);
    for (Addr wb : llc_.invalidatePage(src_pfn))
        mem_.access(wb, true, now);

    // Unmap during the copy: TLB shootdown.
    tlb_.shootdown(static_cast<Vpn>(vpn));
    ledger_.charge(KernelWork::TlbShootdown, cost::kTlbShootdown);

    // Copy 64 words: reads from the source tier (visible to the CXL
    // controller when the source is a controller-observed tier), writes
    // to the destination.  The traffic is issued per word so counters
    // and observers see it, but the copy is charged as a pipelined
    // stream against the src->dst edge of the topology, not 128
    // serialized round trips — migrate_pages() uses a streaming memcpy.
    const Addr src_base = pageBase(src_pfn);
    const Addr dst_base = pageBase(*dst);
    for (unsigned w = 0; w < kWordsPerPage; ++w) {
        const Addr off = static_cast<Addr>(w) * kWordBytes;
        mem_.access(src_base + off, false, now + elapsed);
        mem_.access(dst_base + off, true, now + elapsed);
    }
    elapsed += topo_.edge(src_node, dst_node).pageCopyTime();

    lrus_.remove(vpn, src_node);
    pt_.remap(vpn, *dst, dst_node);
    if (tenants_)
        alloc_.freeFor(src_node, src_pfn, owner);
    else
        alloc_.free(src_node, src_pfn);
    lrus_.insert(vpn, dst_node);
    ++moved_out_[src_node];
    ++moved_in_[dst_node];
    if (tenants_) {
        if (dst_node == topo_.top())
            tenants_->counters(owner).promoted += 1;
        else if (src_node == topo_.top())
            tenants_->counters(owner).demoted += 1;
    }

    ledger_.charge(KernelWork::Migration, costs_.software_per_page);
    elapsed += cyclesToNs(costs_.software_per_page);
    stats_.busy_time += elapsed;
    return elapsed;
}

MigrateResult
MigrationEngine::transientFail(Vpn vpn, Tick now, MigrateOutcome outcome)
{
    // The aborted attempt still walked the rmap and bumped refcounts;
    // charge the unwind, but leave the page mapped at its source —
    // Nomad-style, nothing to roll back.
    ledger_.charge(KernelWork::Migration, cost::kMigrateAbort);
    const Tick elapsed = cyclesToNs(cost::kMigrateAbort);
    stats_.busy_time += elapsed;
    ++stats_.transient_fail;
    MigrateResult res{outcome, elapsed};
    TRACE_EVENT(TraceCat::Migrate, now + elapsed, "migration.transient",
                TraceArgs().u("page", vpn).s("reason", res.reason()));
    return res;
}

MigrateResult
MigrationEngine::move(Vpn vpn, NodeId dst, Tick now)
{
    PROF_SCOPE("os.migration.move");
    m5_assert(dst < topo_.numTiers(), "move to unknown tier %u", dst);
    const Pte &e = pt_.pte(vpn);
    if (!e.valid || e.node == dst) {
        ++stats_.rejected_not_cxl;
        TRACE_EVENT(TraceCat::Migrate, now, "migration.reject",
                    TraceArgs().u("page", vpn).s("reason", "not_cxl"));
        return {MigrateOutcome::RejectedNotCxl, 0};
    }
    if (e.pinned) {
        ++stats_.rejected_pinned;
        TRACE_EVENT(TraceCat::Migrate, now, "migration.reject",
                    TraceArgs().u("page", vpn).s("reason", "pinned"));
        return {MigrateOutcome::RejectedPinned, 0};
    }
    if (faults_ && faults_->fires(FaultPoint::MigrateBusy, now))
        return transientFail(vpn, now, MigrateOutcome::TransientBusy);
    // Moving a shadowed page back onto its shadow's tier IS a clean
    // demotion: take the zero-copy PTE flip (no frame needed).
    if (txn_ && txn_->hasShadow(vpn) && txn_->shadowNode(vpn) == dst) {
        const Tick elapsed = txn_->freeDemote(vpn, now);
        stats_.busy_time += elapsed;
        ++stats_.demoted;
        return {MigrateOutcome::Done, elapsed};
    }
    // Under tier pressure, live shadows are the lazily reclaimable
    // slack: drop the oldest one before declaring exhaustion.
    if (alloc_.freeFrames(dst) == 0 &&
        !(txn_ && txn_->reclaimOne(dst, now)))
        return transientFail(vpn, now, MigrateOutcome::TransientNoFrame);
    // A tenant at its cap cannot take another cap-node frame even while
    // the node has room; the general move() does not demote on the
    // caller's behalf, so the failure is transient like exhaustion.
    if (tenants_ && dst == alloc_.capNode() &&
        alloc_.tenantAtCap(tenants_->tenantOf(vpn)))
        return transientFail(vpn, now, MigrateOutcome::TransientNoFrame);

    const NodeId src = e.node;
    const Pfn src_pfn = e.pfn;
    Tick elapsed;
    if (txn_ && !txn_->degraded(vpn)) {
        const TxnMoveResult tr = txn_->moveTxn(vpn, dst, now);
        stats_.busy_time += tr.busy;
        if (!tr.committed) {
            ++stats_.transient_fail;
            TRACE_EVENT(TraceCat::Migrate, now + tr.busy,
                        "migration.transient",
                        TraceArgs().u("page", vpn).s("reason", "copy_race"));
            return {MigrateOutcome::AbortedRace, tr.busy};
        }
        elapsed = tr.busy;
    } else {
        elapsed = moveTo(vpn, dst, now);
    }
    if (dst == topo_.top()) {
        ++stats_.promoted;
        TRACE_EVENT(TraceCat::Migrate, now + elapsed, "migration.promote",
                    TraceArgs().u("page", vpn)
                               .u("src_pfn", src_pfn)
                               .u("dst_pfn", pt_.pte(vpn).pfn)
                               .u("busy", elapsed));
    } else if (dst > src) {
        ++stats_.demoted;
        TRACE_EVENT(TraceCat::Migrate, now + elapsed, "migration.demote",
                    TraceArgs().u("page", vpn)
                               .u("src_pfn", src_pfn)
                               .u("dst_pfn", pt_.pte(vpn).pfn)
                               .u("busy", elapsed));
    } else {
        ++stats_.moved_lateral;
        TRACE_EVENT(TraceCat::Migrate, now + elapsed, "migration.move",
                    TraceArgs().u("page", vpn)
                               .s("src", topo_.tier(src).name)
                               .s("dst", topo_.tier(dst).name)
                               .u("src_pfn", src_pfn)
                               .u("dst_pfn", pt_.pte(vpn).pfn)
                               .u("busy", elapsed));
    }
    return {MigrateOutcome::Done, elapsed};
}

MigrateResult
MigrationEngine::exchange(Vpn hot, Vpn cold, Tick now)
{
    PROF_SCOPE("os.migration.exchange");
    const Pte &eh = pt_.pte(hot);
    const Pte &ec = pt_.pte(cold);
    if (!eh.valid || !ec.valid || eh.node == ec.node) {
        ++stats_.rejected_not_cxl;
        TRACE_EVENT(TraceCat::Migrate, now, "migration.reject",
                    TraceArgs().u("page", hot).s("reason", "not_cxl"));
        return {MigrateOutcome::RejectedNotCxl, 0};
    }
    if (eh.pinned || ec.pinned) {
        ++stats_.rejected_pinned;
        TRACE_EVENT(TraceCat::Migrate, now, "migration.reject",
                    TraceArgs().u("page", eh.pinned ? hot : cold)
                               .s("reason", "pinned"));
        return {MigrateOutcome::RejectedPinned, 0};
    }
    // An injected EBUSY aborts the whole swap before any state moves —
    // the exchange is atomic: both pages stay where they were.
    if (faults_ && faults_->fires(FaultPoint::MigrateBusy, now))
        return transientFail(hot, now, MigrateOutcome::TransientBusy);

    const NodeId hot_node = eh.node;
    const NodeId cold_node = ec.node;
    const Pfn hot_pfn = eh.pfn;
    const Pfn cold_pfn = ec.pfn;

    // Transactional exchange: both pages stay mapped while the bounce
    // copy streams; each copy records its write generation and either
    // raced copy aborts the whole swap before any mapping changes.
    const bool txn = txn_ && !txn_->degraded(hot) && !txn_->degraded(cold);
    const std::uint32_t hot_gen = txn ? pt_.writeGen(hot) : 0;
    const std::uint32_t cold_gen = txn ? pt_.writeGen(cold) : 0;

    // Flush both pages' cached lines before the frames trade contents.
    Tick elapsed = 0;
    for (Addr wb : llc_.invalidatePage(hot_pfn))
        mem_.access(wb, true, now);
    for (Addr wb : llc_.invalidatePage(cold_pfn))
        mem_.access(wb, true, now);

    // Legacy path: both mappings are torn down before the copy.  The
    // transactional path defers the shootdowns until after validation.
    if (!txn) {
        tlb_.shootdown(static_cast<Vpn>(hot));
        ledger_.charge(KernelWork::TlbShootdown, cost::kTlbShootdown);
        tlb_.shootdown(static_cast<Vpn>(cold));
        ledger_.charge(KernelWork::TlbShootdown, cost::kTlbShootdown);
    }

    // The kernel exchanges pages through a bounce buffer: each page is
    // read once and each frame written once.  Issued per word so the
    // tier counters and controller observers see both streams.
    const Addr hot_base = pageBase(hot_pfn);
    const Addr cold_base = pageBase(cold_pfn);
    for (unsigned w = 0; w < kWordsPerPage; ++w) {
        const Addr off = static_cast<Addr>(w) * kWordBytes;
        mem_.access(hot_base + off, false, now + elapsed);
        mem_.access(cold_base + off, false, now + elapsed);
        mem_.access(hot_base + off, true, now + elapsed);
        mem_.access(cold_base + off, true, now + elapsed);
    }
    // Both directions stream concurrently in principle, but they share
    // the same link pair; charge both edges like two back-to-back
    // single-page copies (AutoTiering measures exchange at roughly 2x a
    // one-way migration).
    elapsed += topo_.edge(hot_node, cold_node).pageCopyTime();
    elapsed += topo_.edge(cold_node, hot_node).pageCopyTime();

    if (txn) {
        // One injection opportunity per copied page, then validate both
        // generations.  Either race unwinds the whole swap atomically.
        (void)txn_->injectRace(hot, now + elapsed);
        (void)txn_->injectRace(cold, now + elapsed);
        const bool hot_raced = !txn_->validate(hot, hot_gen);
        const bool cold_raced = !txn_->validate(cold, cold_gen);
        if (hot_raced || cold_raced) {
            // The racing store is a real write: a shadowed partner's
            // shadow is stale from this instant and must drop now, or
            // the books would carry a shadow newer writes never see.
            if (cold_raced)
                elapsed += txn_->invalidateShadow(cold, now + elapsed);
            // The abort is charged against the promoting page — it is
            // the one the Promoter retries and degrades.
            elapsed += txn_->noteAbort(hot, !hot_raced && cold_raced);
            stats_.busy_time += elapsed;
            ++stats_.transient_fail;
            TRACE_EVENT(TraceCat::Migrate, now + elapsed,
                        "migration.transient",
                        TraceArgs().u("page", hot)
                                   .s("reason", "copy_race"));
            return {MigrateOutcome::AbortedRace, elapsed};
        }
        tlb_.shootdown(static_cast<Vpn>(hot));
        ledger_.charge(KernelWork::TlbShootdown, cost::kTlbShootdown);
        tlb_.shootdown(static_cast<Vpn>(cold));
        ledger_.charge(KernelWork::TlbShootdown, cost::kTlbShootdown);
    }

    lrus_.remove(hot, hot_node);
    lrus_.remove(cold, cold_node);
    pt_.swapFrames(hot, cold);
    // The cold page left the top tier; its shadow (if it was promoted
    // transactionally earlier) is now stale — drop it.
    if (txn_)
        elapsed += txn_->invalidateShadow(cold, now + elapsed);
    lrus_.insert(hot, cold_node);
    lrus_.insert(cold, hot_node);
    ++moved_out_[hot_node];
    ++moved_in_[cold_node];
    ++moved_out_[cold_node];
    ++moved_in_[hot_node];
    // The frames trade owners; when one endpoint is the cap node the
    // frame charge follows the frame (the free lists never change, only
    // the books).  exchangeWithVictim keeps a capped tenant honest by
    // picking a same-tenant victim first.
    if (tenants_ && alloc_.tenantCapsEnabled()) {
        const TenantId th = tenants_->tenantOf(hot);
        const TenantId tc = tenants_->tenantOf(cold);
        if (cold_node == alloc_.capNode()) {
            alloc_.transferCapCharge(tc, th);
            tenants_->counters(th).promoted += 1;
            tenants_->counters(tc).demoted += 1;
        } else if (hot_node == alloc_.capNode()) {
            alloc_.transferCapCharge(th, tc);
            tenants_->counters(tc).promoted += 1;
            tenants_->counters(th).demoted += 1;
        }
    }

    ledger_.charge(KernelWork::Migration, 2 * costs_.software_per_page);
    elapsed += cyclesToNs(2 * costs_.software_per_page);
    stats_.busy_time += elapsed;
    ++stats_.exchanged;
    TRACE_EVENT(TraceCat::Migrate, now + elapsed, "migration.exchange",
                TraceArgs().u("page", hot)
                           .u("partner", cold)
                           .u("src_pfn", hot_pfn)
                           .u("dst_pfn", cold_pfn)
                           .u("busy", elapsed));
    TRACE_EVENT(TraceCat::Migrate, now + elapsed, "migration.exchange_out",
                TraceArgs().u("page", cold)
                           .u("partner", hot)
                           .u("src_pfn", cold_pfn)
                           .u("dst_pfn", hot_pfn)
                           .u("busy", elapsed));
    return {MigrateOutcome::ExchangedInstead, elapsed};
}

std::optional<MigrateResult>
MigrationEngine::exchangeWithVictim(Vpn vpn, Tick now)
{
    // Peek, don't pick: an aborted exchange must leave the victim in
    // its LRU slot (atomicity); exchange() does its own LRU fixup.  A
    // tenant at its cap must swap against its *own* coldest page — any
    // other victim would push it one frame over budget.
    std::optional<Vpn> victim;
    if (tenants_ && alloc_.tenantCapsEnabled() &&
        alloc_.tenantAtCap(tenants_->tenantOf(vpn))) {
        const TenantId t = tenants_->tenantOf(vpn);
        victim = lrus_.top().peekVictimWhere(
            [&](Vpn v) { return tenants_->tenantOf(v) == t; });
    } else {
        victim = lrus_.top().peekVictim();
    }
    if (!victim || pt_.pte(*victim).pinned) {
        ++stats_.exchange_failed;
        return std::nullopt;
    }
    MigrateResult res = exchange(vpn, *victim, now);
    if (!res.ok() && !res.transient()) {
        // Permanent reject (e.g. racing unmap): fall back to the
        // legacy no-frame outcome.
        ++stats_.exchange_failed;
        return std::nullopt;
    }
    if (res.transient())
        ++stats_.exchange_failed;
    return res;
}

MigrateResult
MigrationEngine::promote(Vpn vpn, Tick now)
{
    PROF_SCOPE("os.migration.promote");
    const Pte &e = pt_.pte(vpn);
    if (!e.valid || !topo_.isLower(e.node)) {
        ++stats_.rejected_not_cxl;
        TRACE_EVENT(TraceCat::Migrate, now, "migration.reject",
                    TraceArgs().u("page", vpn).s("reason", "not_cxl"));
        return {MigrateOutcome::RejectedNotCxl, 0};
    }
    if (e.pinned) {
        ++stats_.rejected_pinned;
        TRACE_EVENT(TraceCat::Migrate, now, "migration.reject",
                    TraceArgs().u("page", vpn).s("reason", "pinned"));
        return {MigrateOutcome::RejectedPinned, 0};
    }

    // Injected transient failures (docs/FAULTS.md): EBUSY / refcount
    // races abort before any frame is touched.  A failed top-tier frame
    // allocation instead falls back to an atomic page exchange with the
    // coldest top-tier page — promotion without allocation — turning
    // the historical TransientNoFrame storm into successful swaps.
    if (faults_ && faults_->fires(FaultPoint::MigrateBusy, now))
        return transientFail(vpn, now, MigrateOutcome::TransientBusy);
    if (faults_ && faults_->fires(FaultPoint::DdrAlloc, now)) {
        if (exchange_enabled_) {
            if (auto swapped = exchangeWithVictim(vpn, now))
                return *swapped;
        }
        return transientFail(vpn, now, MigrateOutcome::TransientNoFrame);
    }

    const NodeId top = topo_.top();
    Tick elapsed = 0;
    // Per-tenant cgroup bound (docs/MULTITENANT.md): a tenant at its
    // DDR cap recycles its *own* coldest page, exactly like node
    // exhaustion but scoped to the tenant — one tenant's hot streak can
    // never evict another tenant's resident pages.
    if (tenants_ && top == alloc_.capNode()) {
        const TenantId t = tenants_->tenantOf(vpn);
        if (alloc_.tenantAtCap(t)) {
            const auto victim = lrus_.top().pickVictimWhere(
                [&](Vpn v) {
                    return tenants_->tenantOf(v) == t &&
                           !pt_.pte(v).pinned;
                });
            if (!victim) {
                tenants_->counters(t).cap_rejects += 1;
                ++stats_.failed_capacity;
                TRACE_EVENT(TraceCat::Migrate, now, "migration.reject",
                            TraceArgs().u("page", vpn)
                                       .u("tenant", t)
                                       .s("reason", "tenant_cap"));
                return {MigrateOutcome::FailedCapacity, 0};
            }
            tenants_->counters(t).cap_demotions += 1;
            elapsed += demote(*victim, now).busy;
        }
    }
    if (alloc_.freeFrames(top) == 0) {
        // Conservative promotion: demote an MGLRU victim to make room.
        auto victims = lrus_.top().pickVictims(1);
        if (victims.empty()) {
            // Opportunistic promotion (AutoTiering): no victim, so take
            // the best-fit intermediate tier when the topology has one.
            if (const auto best = bestFitBelowTop(e.node)) {
                const NodeId src_node = e.node;
                const Pfn src_pfn = e.pfn;
                elapsed = moveTo(vpn, *best, now);
                ++stats_.placed_lower;
                TRACE_EVENT(TraceCat::Migrate, now + elapsed,
                            "migration.move",
                            TraceArgs().u("page", vpn)
                                       .s("src", topo_.tier(src_node).name)
                                       .s("dst", topo_.tier(*best).name)
                                       .u("src_pfn", src_pfn)
                                       .u("dst_pfn", pt_.pte(vpn).pfn)
                                       .u("busy", elapsed));
                return {MigrateOutcome::PlacedLowerTier, elapsed};
            }
            ++stats_.failed_capacity;
            TRACE_EVENT(TraceCat::Migrate, now, "migration.reject",
                        TraceArgs().u("page", vpn)
                                   .s("reason", "failed_capacity"));
            return {MigrateOutcome::FailedCapacity, 0};
        }
        elapsed += demote(victims[0], now).busy;
        if (alloc_.freeFrames(top) == 0) {
            ++stats_.failed_capacity;
            TRACE_EVENT(TraceCat::Migrate, now + elapsed,
                        "migration.reject",
                        TraceArgs().u("page", vpn)
                                   .s("reason", "failed_capacity"));
            return {MigrateOutcome::FailedCapacity, elapsed};
        }
    }

    const Pfn src_pfn = e.pfn;
    // Transactional promotion (docs/MIGRATION.md): copy while mapped,
    // validate, retry through the Promoter on a write race.  A page
    // past the abort ladder stays on the legacy stop-the-world path.
    if (txn_ && !txn_->degraded(vpn)) {
        const TxnMoveResult tr = txn_->moveTxn(vpn, top, now + elapsed);
        stats_.busy_time += tr.busy;
        elapsed += tr.busy;
        if (!tr.committed) {
            ++stats_.transient_fail;
            TRACE_EVENT(TraceCat::Migrate, now + elapsed,
                        "migration.transient",
                        TraceArgs().u("page", vpn).s("reason", "copy_race"));
            return {MigrateOutcome::AbortedRace, elapsed};
        }
    } else {
        elapsed += moveTo(vpn, top, now + elapsed);
    }
    ++stats_.promoted;
    TRACE_EVENT(TraceCat::Migrate, now + elapsed, "migration.promote",
                TraceArgs().u("page", vpn)
                           .u("src_pfn", src_pfn)
                           .u("dst_pfn", pt_.pte(vpn).pfn)
                           .u("busy", elapsed));
    return {MigrateOutcome::Done, elapsed};
}

BatchResult
MigrationEngine::promoteBatch(const std::vector<Vpn> &vpns, Tick now)
{
    BatchResult batch;
    for (Vpn vpn : vpns) {
        MigrateResult res = promote(vpn, now + batch.busy);
        batch.busy += res.busy;
        if (res.ok())
            ++batch.promoted;
        else if (res.transient())
            ++batch.transient;
        else
            ++batch.rejected;
    }
    noteBatch(vpns.size());
    if (!vpns.empty()) {
        TRACE_SPAN(TraceCat::Migrate, now, batch.busy, "migration.batch",
                   TraceArgs().u("pages", vpns.size()));
    }
    return batch;
}

MigrateResult
MigrationEngine::demote(Vpn vpn, Tick now)
{
    PROF_SCOPE("os.migration.demote");
    const Pte &e = pt_.pte(vpn);
    m5_assert(e.valid && e.node != topo_.spill(),
              "demote of vpn %lu already on the spill tier",
              static_cast<unsigned long>(vpn));
    // Non-exclusive tiering: a still-clean shadowed page demotes by
    // flipping its PTE back onto the retained shadow frame — zero copy
    // traffic (docs/MIGRATION.md).
    if (txn_ && txn_->hasShadow(vpn)) {
        const Tick elapsed = txn_->freeDemote(vpn, now);
        stats_.busy_time += elapsed;
        ++stats_.demoted;
        return {MigrateOutcome::Done, elapsed};
    }
    // Next slower tier with a free frame; the spill tier always has one
    // (it is sized to the footprint plus slack).  A tier whose frames
    // are tied up in shadows reclaims the oldest one instead of being
    // skipped — shadows are slack, not occupancy.
    NodeId dst = topo_.spill();
    for (NodeId n = e.node + 1; n < topo_.numTiers(); ++n) {
        if (alloc_.freeFrames(n) > 0 ||
            (txn_ && txn_->reclaimOne(n, now))) {
            dst = n;
            break;
        }
    }
    const Pfn src_pfn = e.pfn;
    const Tick elapsed = moveTo(vpn, dst, now);
    ++stats_.demoted;
    TRACE_EVENT(TraceCat::Migrate, now + elapsed, "migration.demote",
                TraceArgs().u("page", vpn)
                           .u("src_pfn", src_pfn)
                           .u("dst_pfn", pt_.pte(vpn).pfn)
                           .u("busy", elapsed));
    return {MigrateOutcome::Done, elapsed};
}

void
MigrationEngine::registerStats(StatRegistry &reg) const
{
    reg.addCounter("os.migration.pages_promoted", &stats_.promoted);
    reg.addCounter("os.migration.pages_demoted", &stats_.demoted);
    reg.addCounter("os.migration.rejected_pinned", &stats_.rejected_pinned);
    reg.addCounter("os.migration.rejected_not_cxl",
                   &stats_.rejected_not_cxl);
    reg.addCounter("os.migration.failed_capacity", &stats_.failed_capacity);
    reg.addCounter("os.migration.busy_time", &stats_.busy_time);
    reg.addHistogram("os.migration.batch_pages", &batch_hist_);
    // Resilience counters only exist when faults are in play, so a
    // fault-free run's telemetry JSONL stays byte-identical to builds
    // without the subsystem (docs/FAULTS.md).
    if (faults_) {
        reg.addCounter("os.migration.transient_fail",
                       &stats_.transient_fail);
        reg.addCounter("os.migration.retries", &stats_.retries);
        reg.addCounter("os.migration.dropped", &stats_.dropped);
    }
    // Exchange / N-tier counters can only move under fault injection or
    // with more than two tiers; gating their registration the same way
    // keeps the default two-tier JSONL byte-identical (docs/TOPOLOGY.md).
    if (faults_ || topo_.numTiers() > 2) {
        reg.addCounter("os.migration.exchange_done", &stats_.exchanged);
        reg.addCounter("os.migration.exchange_failed",
                       &stats_.exchange_failed);
        reg.addCounter("os.migration.placed_lower", &stats_.placed_lower);
        reg.addCounter("os.migration.moved_lateral", &stats_.moved_lateral);
    }
    if (topo_.numTiers() > 2) {
        for (NodeId n = 0; n < topo_.numTiers(); ++n) {
            const std::string &tier = topo_.tier(n).name;
            reg.addCounter("os.migration.in." + tier, &moved_in_[n]);
            reg.addCounter("os.migration.out." + tier, &moved_out_[n]);
        }
    }
    // Transaction/shadow counters exist only when the mode is armed, so
    // a --no-txn-migrate run's telemetry stays byte-identical to the
    // pre-transactional simulator (docs/MIGRATION.md).
    if (txn_)
        txn_->registerStats(reg);
}

} // namespace m5
