#include "os/migration.hh"

#include "common/logging.hh"
#include "os/costs.hh"
#include "telemetry/trace.hh"

namespace m5 {

const char *
MigrateResult::reason() const
{
    switch (outcome) {
      case MigrateOutcome::Done: return "ok";
      case MigrateOutcome::TransientBusy: return "busy";
      case MigrateOutcome::TransientNoFrame: return "no_frame";
      case MigrateOutcome::RejectedPinned: return "pinned";
      case MigrateOutcome::RejectedNotCxl: return "not_cxl";
      case MigrateOutcome::FailedCapacity: return "failed_capacity";
      default:
        m5_panic("bad MigrateOutcome %u",
                 static_cast<unsigned>(outcome));
    }
}

MigrationEngine::MigrationEngine(PageTable &pt, FrameAllocator &alloc,
                                 MemorySystem &mem, SetAssocCache &llc,
                                 Tlb &tlb, KernelLedger &ledger, MgLru &mglru,
                                 const MigrationCosts &costs)
    : pt_(pt), alloc_(alloc), mem_(mem), llc_(llc), tlb_(tlb),
      ledger_(ledger), mglru_(mglru), costs_(costs)
{
}

std::size_t
MigrationEngine::ddrFreeFrames() const
{
    return alloc_.freeFrames(kNodeDdr);
}

bool
MigrationEngine::canPromote(Vpn vpn) const
{
    const Pte &e = pt_.pte(vpn);
    return e.valid && !e.pinned && e.node == kNodeCxl;
}

Tick
MigrationEngine::moveTo(Vpn vpn, NodeId dst_node, Tick now)
{
    Pte &e = pt_.pte(vpn);
    const NodeId src_node = e.node;
    const Pfn src_pfn = e.pfn;

    auto dst = alloc_.allocate(dst_node);
    m5_assert(dst.has_value(), "moveTo without a free frame on node %u",
              dst_node);

    // Flush the page's cached lines; dirty data returns to the source
    // frame before the copy (posted writes — bandwidth, not latency).
    Tick elapsed = 0;
    for (Addr wb : llc_.invalidatePage(src_pfn))
        mem_.access(wb, true, now);

    // Unmap during the copy: TLB shootdown.
    tlb_.shootdown(static_cast<Vpn>(vpn));
    ledger_.charge(KernelWork::TlbShootdown, cost::kTlbShootdown);

    // Copy 64 words: reads from the source tier (visible to the CXL
    // controller when the source is CXL), writes to the destination.  The
    // traffic is issued per word so counters and observers see it, but the
    // copy is charged as a pipelined stream, not 128 serialized round
    // trips — migrate_pages() uses a streaming memcpy.
    const Addr src_base = pageBase(src_pfn);
    const Addr dst_base = pageBase(*dst);
    for (unsigned w = 0; w < kWordsPerPage; ++w) {
        const Addr off = static_cast<Addr>(w) * kWordBytes;
        mem_.access(src_base + off, false, now + elapsed);
        mem_.access(dst_base + off, true, now + elapsed);
    }
    elapsed += costs_.copy_latency_floor +
               static_cast<Tick>(2.0 * kPageBytes /
                                 costs_.copy_bytes_per_s * 1e9);

    pt_.remap(vpn, *dst, dst_node);
    alloc_.free(src_node, src_pfn);

    ledger_.charge(KernelWork::Migration, costs_.software_per_page);
    elapsed += cyclesToNs(costs_.software_per_page);
    stats_.busy_time += elapsed;
    return elapsed;
}

MigrateResult
MigrationEngine::transientFail(Vpn vpn, Tick now, MigrateOutcome outcome)
{
    // The aborted attempt still walked the rmap and bumped refcounts;
    // charge the unwind, but leave the page mapped at its source —
    // Nomad-style, nothing to roll back.
    ledger_.charge(KernelWork::Migration, cost::kMigrateAbort);
    const Tick elapsed = cyclesToNs(cost::kMigrateAbort);
    stats_.busy_time += elapsed;
    ++stats_.transient_fail;
    MigrateResult res{outcome, elapsed};
    TRACE_EVENT(TraceCat::Migrate, now + elapsed, "migration.transient",
                TraceArgs().u("page", vpn).s("reason", res.reason()));
    return res;
}

MigrateResult
MigrationEngine::promote(Vpn vpn, Tick now)
{
    const Pte &e = pt_.pte(vpn);
    if (!e.valid || e.node != kNodeCxl) {
        ++stats_.rejected_not_cxl;
        TRACE_EVENT(TraceCat::Migrate, now, "migration.reject",
                    TraceArgs().u("page", vpn).s("reason", "not_cxl"));
        return {MigrateOutcome::RejectedNotCxl, 0};
    }
    if (e.pinned) {
        ++stats_.rejected_pinned;
        TRACE_EVENT(TraceCat::Migrate, now, "migration.reject",
                    TraceArgs().u("page", vpn).s("reason", "pinned"));
        return {MigrateOutcome::RejectedPinned, 0};
    }

    // Injected transient failures (docs/FAULTS.md): EBUSY / refcount
    // races abort before any frame is touched; DDR allocation failure
    // aborts before the demote-for-room path would run.
    if (faults_ && faults_->fires(FaultPoint::MigrateBusy, now))
        return transientFail(vpn, now, MigrateOutcome::TransientBusy);
    if (faults_ && faults_->fires(FaultPoint::DdrAlloc, now))
        return transientFail(vpn, now, MigrateOutcome::TransientNoFrame);

    Tick elapsed = 0;
    if (alloc_.freeFrames(kNodeDdr) == 0) {
        // Demote an MGLRU victim to make room.
        auto victims = mglru_.pickVictims(1);
        if (victims.empty()) {
            ++stats_.failed_capacity;
            TRACE_EVENT(TraceCat::Migrate, now, "migration.reject",
                        TraceArgs().u("page", vpn)
                                   .s("reason", "failed_capacity"));
            return {MigrateOutcome::FailedCapacity, 0};
        }
        elapsed += demote(victims[0], now);
        if (alloc_.freeFrames(kNodeDdr) == 0) {
            ++stats_.failed_capacity;
            TRACE_EVENT(TraceCat::Migrate, now + elapsed,
                        "migration.reject",
                        TraceArgs().u("page", vpn)
                                   .s("reason", "failed_capacity"));
            return {MigrateOutcome::FailedCapacity, elapsed};
        }
    }

    const Pfn src_pfn = e.pfn;
    elapsed += moveTo(vpn, kNodeDdr, now + elapsed);
    mglru_.insert(vpn);
    ++stats_.promoted;
    TRACE_EVENT(TraceCat::Migrate, now + elapsed, "migration.promote",
                TraceArgs().u("page", vpn)
                           .u("src_pfn", src_pfn)
                           .u("dst_pfn", pt_.pte(vpn).pfn)
                           .u("busy", elapsed));
    return {MigrateOutcome::Done, elapsed};
}

BatchResult
MigrationEngine::promoteBatch(const std::vector<Vpn> &vpns, Tick now)
{
    BatchResult batch;
    for (Vpn vpn : vpns) {
        MigrateResult res = promote(vpn, now + batch.busy);
        batch.busy += res.busy;
        if (res.ok())
            ++batch.promoted;
        else if (res.transient())
            ++batch.transient;
        else
            ++batch.rejected;
    }
    noteBatch(vpns.size());
    if (!vpns.empty()) {
        TRACE_SPAN(TraceCat::Migrate, now, batch.busy, "migration.batch",
                   TraceArgs().u("pages", vpns.size()));
    }
    return batch;
}

Tick
MigrationEngine::demote(Vpn vpn, Tick now)
{
    const Pte &e = pt_.pte(vpn);
    m5_assert(e.valid && e.node == kNodeDdr,
              "demote of non-DDR vpn %lu", static_cast<unsigned long>(vpn));
    if (mglru_.contains(vpn))
        mglru_.remove(vpn);
    const Pfn src_pfn = e.pfn;
    const Tick elapsed = moveTo(vpn, kNodeCxl, now);
    ++stats_.demoted;
    TRACE_EVENT(TraceCat::Migrate, now + elapsed, "migration.demote",
                TraceArgs().u("page", vpn)
                           .u("src_pfn", src_pfn)
                           .u("dst_pfn", pt_.pte(vpn).pfn)
                           .u("busy", elapsed));
    return elapsed;
}

void
MigrationEngine::registerStats(StatRegistry &reg) const
{
    reg.addCounter("os.migration.pages_promoted", &stats_.promoted);
    reg.addCounter("os.migration.pages_demoted", &stats_.demoted);
    reg.addCounter("os.migration.rejected_pinned", &stats_.rejected_pinned);
    reg.addCounter("os.migration.rejected_not_cxl",
                   &stats_.rejected_not_cxl);
    reg.addCounter("os.migration.failed_capacity", &stats_.failed_capacity);
    reg.addCounter("os.migration.busy_time", &stats_.busy_time);
    reg.addHistogram("os.migration.batch_pages", &batch_hist_);
    // Resilience counters only exist when faults are in play, so a
    // fault-free run's telemetry JSONL stays byte-identical to builds
    // without the subsystem (docs/FAULTS.md).
    if (faults_) {
        reg.addCounter("os.migration.transient_fail",
                       &stats_.transient_fail);
        reg.addCounter("os.migration.retries", &stats_.retries);
        reg.addCounter("os.migration.dropped", &stats_.dropped);
    }
}

} // namespace m5
