#include "os/frame_alloc.hh"

#include <algorithm>

#include "common/logging.hh"

namespace m5 {

FrameAllocator::FrameAllocator(const MemorySystem &mem)
{
    nodes_.resize(mem.tiers());
    for (std::size_t n = 0; n < mem.tiers(); ++n) {
        const MemTier &tier = mem.tier(static_cast<NodeId>(n));
        NodeState &state = nodes_[n];
        state.total = tier.framesTotal();
        state.free_list.reserve(state.total);
        // Push descending so allocation hands out ascending PFNs.
        const Pfn first = tier.firstPfn();
        for (std::size_t i = state.total; i-- > 0;)
            state.free_list.push_back(first + i);
    }
}

std::optional<Pfn>
FrameAllocator::allocate(NodeId node)
{
    m5_assert(node < nodes_.size(), "no node %u", node);
    auto &fl = nodes_[node].free_list;
    if (fl.empty())
        return std::nullopt;
    Pfn pfn = fl.back();
    fl.pop_back();
    return pfn;
}

void
FrameAllocator::free(NodeId node, Pfn pfn)
{
    m5_assert(node < nodes_.size(), "no node %u", node);
    nodes_[node].free_list.push_back(pfn);
    m5_assert(nodes_[node].free_list.size() <= nodes_[node].total,
              "double free on node %u", node);
}

std::size_t
FrameAllocator::freeFrames(NodeId node) const
{
    m5_assert(node < nodes_.size(), "no node %u", node);
    return nodes_[node].free_list.size();
}

std::size_t
FrameAllocator::usedFrames(NodeId node) const
{
    return totalFrames(node) - freeFrames(node);
}

std::size_t
FrameAllocator::totalFrames(NodeId node) const
{
    m5_assert(node < nodes_.size(), "no node %u", node);
    return nodes_[node].total;
}

} // namespace m5
