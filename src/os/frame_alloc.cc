#include "os/frame_alloc.hh"

#include <algorithm>

#include "common/logging.hh"

namespace m5 {

FrameAllocator::FrameAllocator(const MemorySystem &mem)
{
    nodes_.resize(mem.tiers());
    for (std::size_t n = 0; n < mem.tiers(); ++n) {
        const MemTier &tier = mem.tier(static_cast<NodeId>(n));
        NodeState &state = nodes_[n];
        state.total = tier.framesTotal();
        state.free_list.reserve(state.total);
        // Push descending so allocation hands out ascending PFNs.
        const Pfn first = tier.firstPfn();
        for (std::size_t i = state.total; i-- > 0;)
            state.free_list.push_back(first + i);
    }
}

std::optional<Pfn>
FrameAllocator::allocate(NodeId node)
{
    m5_assert(node < nodes_.size(), "no node %u", node);
    auto &fl = nodes_[node].free_list;
    if (fl.empty())
        return std::nullopt;
    Pfn pfn = fl.back();
    fl.pop_back();
    return pfn;
}

void
FrameAllocator::free(NodeId node, Pfn pfn)
{
    m5_assert(node < nodes_.size(), "no node %u", node);
    nodes_[node].free_list.push_back(pfn);
    m5_assert(nodes_[node].free_list.size() <= nodes_[node].total,
              "double free on node %u", node);
}

std::size_t
FrameAllocator::freeFrames(NodeId node) const
{
    m5_assert(node < nodes_.size(), "no node %u", node);
    return nodes_[node].free_list.size();
}

std::size_t
FrameAllocator::usedFrames(NodeId node) const
{
    return totalFrames(node) - freeFrames(node);
}

std::size_t
FrameAllocator::totalFrames(NodeId node) const
{
    m5_assert(node < nodes_.size(), "no node %u", node);
    return nodes_[node].total;
}

void
FrameAllocator::enableTenantCaps(NodeId node, std::vector<std::size_t> caps)
{
    m5_assert(node < nodes_.size(), "no node %u", node);
    m5_assert(!tenantCapsEnabled(), "tenant caps already enabled");
    m5_assert(!caps.empty(), "tenant caps need at least one tenant");
    cap_node_ = node;
    tenant_caps_ = std::move(caps);
    tenant_used_.assign(tenant_caps_.size(), 0);
}

std::optional<Pfn>
FrameAllocator::allocateFor(NodeId node, TenantId tenant)
{
    m5_assert(tenantCapsEnabled(), "allocateFor without tenant caps");
    m5_assert(tenant < tenant_caps_.size(), "no tenant %u", tenant);
    if (node != cap_node_)
        return allocate(node);
    // The per-tenant cap is checked before the node's free list: a
    // tenant at its budget must demote its own victim even when the
    // node still has room (cgroup semantics, docs/MULTITENANT.md).
    if (tenant_used_[tenant] >= tenant_caps_[tenant])
        return std::nullopt;
    auto pfn = allocate(node);
    if (pfn)
        ++tenant_used_[tenant];
    return pfn;
}

void
FrameAllocator::freeFor(NodeId node, Pfn pfn, TenantId tenant)
{
    m5_assert(tenantCapsEnabled(), "freeFor without tenant caps");
    m5_assert(tenant < tenant_caps_.size(), "no tenant %u", tenant);
    free(node, pfn);
    if (node == cap_node_) {
        m5_assert(tenant_used_[tenant] > 0,
                  "tenant %u frees a cap-node frame it never charged",
                  tenant);
        --tenant_used_[tenant];
    }
}

void
FrameAllocator::transferCapCharge(TenantId from, TenantId to)
{
    m5_assert(tenantCapsEnabled(), "transferCapCharge without tenant caps");
    m5_assert(from < tenant_caps_.size() && to < tenant_caps_.size(),
              "bad tenant %u -> %u", from, to);
    if (from == to)
        return;
    m5_assert(tenant_used_[from] > 0,
              "tenant %u transfers a cap-node frame it never charged",
              from);
    --tenant_used_[from];
    ++tenant_used_[to];
}

std::size_t
FrameAllocator::tenantUsed(TenantId tenant) const
{
    m5_assert(tenant < tenant_used_.size(), "no tenant %u", tenant);
    return tenant_used_[tenant];
}

std::size_t
FrameAllocator::tenantCap(TenantId tenant) const
{
    m5_assert(tenant < tenant_caps_.size(), "no tenant %u", tenant);
    return tenant_caps_[tenant];
}

} // namespace m5
