/**
 * @file
 * The kernel-side tenant model for multi-tenant colocation
 * (docs/MULTITENANT.md).
 *
 * A tenant is one colocated workload with its own contiguous VPN range
 * and a cgroup-style cap on the top-tier (DDR) frames it may occupy —
 * the per-cgroup variant of the paper's §6 DDR bound.  TenantTable is
 * the OS-layer ground truth the frame allocator, the migration engine
 * and the M5 manager share: VPN -> tenant resolution, cap bookkeeping,
 * and the per-tenant outcome counters behind the `tenant.<id>.*`
 * telemetry namespace.
 *
 * The table lives in the os layer (below cxl/m5/sim in the layering
 * DAG) so every consumer can reach it; the workload-facing half of the
 * tenant model — spec parsing against the benchmark registry and the
 * deterministic access interleaver — is TenantSet in src/sim/tenants.hh.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "telemetry/registry.hh"

namespace m5 {

/**
 * One tenant's declaration, parsed from the colon-keyed spec grammar
 * (docs/MULTITENANT.md):
 *
 *     bench[:cap=F][:share=N]
 *
 * comma-separated per tenant, e.g. `redis:cap=0.25,mcf_r:cap=0.5:share=2`.
 * `cap` is the tenant's DDR budget as a fraction of its own footprint in
 * (0, 1]; `cap=0` is rejected at parse time — a tenant with no DDR at
 * all cannot make progress and is always a spec bug.  `share` >= 1 is
 * the tenant's weight in the deterministic round-robin interleave.
 */
struct TenantSpec
{
    std::string benchmark;
    double ddr_cap = 1.0;
    unsigned share = 1;

    /** Parse a comma-separated tenant list; fatal on malformed specs. */
    static std::vector<TenantSpec> parseList(const std::string &spec);

    /** Canonical spec string (round-trips through parseList). */
    std::string describe() const;
};

/** Per-tenant outcome counters (registered as `tenant.<id>.*`). */
struct TenantCounters
{
    std::uint64_t accesses = 0;       //!< Post-L2 accesses issued.
    std::uint64_t ddr_hits = 0;       //!< LLC fills served by the top tier.
    std::uint64_t lower_hits = 0;     //!< LLC fills served by lower tiers.
    std::uint64_t promoted = 0;       //!< Pages arrived on the top tier.
    std::uint64_t demoted = 0;        //!< Pages departed the top tier.
    std::uint64_t cap_demotions = 0;  //!< Demotions forced by the cap.
    std::uint64_t cap_rejects = 0;    //!< Promotions refused at the cap.
    std::uint64_t nominated = 0;      //!< Candidates elected for promotion.
    std::uint64_t quota_deferred = 0; //!< Candidates deferred by the quota.
    Tick access_time = 0;             //!< Summed post-L2 access latency.
    //! Post-L2 access latency distribution (ns); p99 is the tenant's
    //! interference-sensitive latency metric.
    StatHistogram access_latency{
        {8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192}};
};

/**
 * The OS view of the colocated tenants: contiguous VPN ranges, DDR frame
 * caps, and shared counters.  Built once at system construction; the
 * ranges never change (tenant address spaces are static).
 */
class TenantTable
{
  public:
    /** One tenant's extent and budget. */
    struct Entry
    {
        std::string name;        //!< Benchmark name (reports only).
        Vpn vpn_base = 0;        //!< First VPN of the tenant's range.
        std::size_t pages = 0;   //!< Footprint in pages.
        std::size_t cap_frames = 0; //!< Top-tier frame budget.
        unsigned share = 1;      //!< Round-robin weight.
    };

    explicit TenantTable(std::vector<Entry> entries);

    /** Number of tenants. */
    std::size_t count() const { return entries_.size(); }

    /** Tenant owning a VPN (fatal for out-of-range VPNs). */
    TenantId tenantOf(Vpn vpn) const;

    /** A tenant's static entry. */
    const Entry &entry(TenantId t) const { return entries_[t]; }

    /** A tenant's mutable counters. */
    TenantCounters &counters(TenantId t) { return counters_[t]; }
    const TenantCounters &counters(TenantId t) const { return counters_[t]; }

    /** Total pages across all tenants. */
    std::size_t totalPages() const { return total_pages_; }

    /**
     * Register every tenant's counters under `tenant.<id>.*` plus a
     * `ddr_frames` gauge fed by `ddr_used` (the frame allocator's
     * per-tenant occupancy, wired by TieredSystem).  Only called for
     * multi-tenant runs, so single-tenant telemetry stays byte-identical.
     */
    void registerStats(StatRegistry &reg,
                       const std::vector<std::size_t> &ddr_used) const;

  private:
    std::vector<Entry> entries_;
    std::vector<TenantCounters> counters_;
    std::size_t total_pages_ = 0;
};

} // namespace m5
