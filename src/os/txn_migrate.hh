/**
 * @file
 * Transactional page migration with shadow copies (docs/MIGRATION.md).
 *
 * The legacy migration path is stop-the-world: the page is unmapped
 * (TLB shootdown) before the copy starts, so the application eats the
 * full copy latency on any touch, and every demotion pays a full page
 * copy.  Nomad ("Non-Exclusive Memory Tiering via Transactional Page
 * Migration") shows both costs are avoidable:
 *
 *  - Transactional copy: the page stays mapped at its source while the
 *    copy streams.  A per-page write generation (PageTable::writeGen)
 *    is recorded when the copy starts; any store inside the copy window
 *    bumps it, and validation compares generations before anything is
 *    remapped.  A mismatch aborts the transaction — the destination
 *    frame is unwound, the page never moved, and the caller retries
 *    through the Promoter's bounded-backoff queue.
 *
 *  - Graceful degradation: a page that keeps aborting (K = 2) is
 *    write-hot enough that copying it while mapped is hopeless; it
 *    degrades, per page, to the legacy stop-the-world path — the same
 *    ladder shape Monitor uses for stale MMIO.
 *
 *  - Non-exclusive tiering: a committed promotion keeps its source
 *    frame allocated as a *shadow*.  Demoting the page while it is
 *    still clean is then a PTE flip back onto the shadow frame — zero
 *    copy traffic (freeDemote).  A store to the shadowed page
 *    invalidates the shadow eagerly; tier pressure reclaims shadows
 *    lazily, oldest first (reclaimOne).
 *
 * The migrator is engine-private state: MigrationEngine routes
 * promote()/move()/exchange() through it when transactional mode is on
 * (SystemConfig::txn_migrate, --no-txn-migrate) and the page has not
 * degraded.  With the mode off the engine never constructs one and
 * every byte of the simulation matches the pre-transactional code.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "cache/cache.hh"
#include "cache/tlb.hh"
#include "common/types.hh"
#include "fault/fault.hh"
#include "mem/memsys.hh"
#include "mem/topology.hh"
#include "os/costs.hh"
#include "os/frame_alloc.hh"
#include "os/kernel_ledger.hh"
#include "os/mglru.hh"
#include "os/page_table.hh"
#include "os/tenant.hh"
#include "telemetry/registry.hh"

namespace m5 {

/** Transaction / shadow lifecycle counters (`os.migration.txn_*`). */
struct TxnStats
{
    std::uint64_t commits = 0; //!< Transactions validated and remapped.
    std::uint64_t aborts = 0;  //!< Write-raced copies unwound.
    //! Abort reasons: the migrating page itself raced, or (exchange
    //! only) the top-tier partner page raced.
    std::uint64_t abort_src_race = 0;
    std::uint64_t abort_partner_race = 0;
    //! Pages that crossed the abort ladder (K aborts) and fell back to
    //! the legacy stop-the-world path for good.
    std::uint64_t degraded_pages = 0;
    std::uint64_t shadow_retained = 0;    //!< Shadows created by commits.
    std::uint64_t shadow_invalidated = 0; //!< Dropped by a store.
    std::uint64_t shadow_reclaimed = 0;   //!< Dropped by tier pressure.
    std::uint64_t demoted_free = 0;       //!< Zero-copy PTE-flip demotions.
};

/**
 * Result of one transactional move.  [[nodiscard]] for the same reason
 * MigrateResult is: an unread abort is a silently lost page placement
 * (m5lint's no-unchecked-migrate-result rule seeds on this type too).
 */
struct [[nodiscard]] TxnMoveResult
{
    bool committed = false;
    Tick busy = 0; //!< Time consumed (copy + validate, or copy + unwind).
};

/** The transactional-migration and shadow-frame state machine. */
class TransactionalMigrator
{
  public:
    /** Aborts after which a page degrades to the legacy path. */
    static constexpr unsigned kDegradeAborts = 2;

    /**
     * @param software_per_page Per-page kernel overhead charged on
     *        commit (the engine's MigrationCosts value).
     * @param moved_in,moved_out The engine's per-tier migration
     *        counters; committed transactions keep them balanced.
     */
    TransactionalMigrator(const TierTopology &topo, PageTable &pt,
                          FrameAllocator &alloc, MemorySystem &mem,
                          SetAssocCache &llc, Tlb &tlb,
                          KernelLedger &ledger, TierLrus &lrus,
                          Cycles software_per_page,
                          std::vector<std::uint64_t> &moved_in,
                          std::vector<std::uint64_t> &moved_out);

    /** Fault injector for `copy_race` draws (nullptr detaches). */
    void attachFaults(FaultInjector *faults) { faults_ = faults; }

    /** Tenant table for cap-node frame accounting (nullptr detaches). */
    void attachTenants(TenantTable *tenants) { tenants_ = tenants; }

    /**
     * One transactional page move: copy while mapped, validate the
     * write generation, then commit (shootdown + remap, retaining a
     * shadow when the move is a promotion from a lower tier) or abort
     * (unwind the destination frame; the page never moved).  The caller
     * guarantees the page is valid/unpinned and a frame is available.
     */
    TxnMoveResult moveTxn(Vpn vpn, NodeId dst_node, Tick now);

    /**
     * Zero-copy demotion of a still-clean shadowed page: PTE flip back
     * onto the shadow frame, free the top-tier frame.  Returns the time
     * consumed (no copy traffic at all).  Caller guarantees hasShadow.
     */
    Tick freeDemote(Vpn vpn, Tick now);

    /**
     * A store retired against this page: bump the write generation
     * (racing any in-flight copy window) and invalidate its shadow if
     * one is live.  Returns kernel busy time (0 on the common path).
     */
    Tick
    noteWrite(Vpn vpn, Tick now)
    {
        pt_.noteWrite(vpn);
        if (shadow_pfn_[vpn] == kNoShadowPfn)
            return 0;
        return releaseShadow(vpn, now, /*reclaimed=*/false);
    }

    /** Drop this page's shadow if one is live (page left the top tier
     *  via a legacy copy/exchange).  Returns kernel busy time. */
    Tick
    invalidateShadow(Vpn vpn, Tick now)
    {
        if (shadow_pfn_[vpn] == kNoShadowPfn)
            return 0;
        return releaseShadow(vpn, now, /*reclaimed=*/false);
    }

    /**
     * Tier pressure: reclaim the oldest live shadow on `node`, freeing
     * its frame.  Returns false when the node holds no shadows.
     */
    bool reclaimOne(NodeId node, Tick now);

    /** Injected write race (FaultPoint::CopyRace): the racing store
     *  lands via PageTable::noteWrite, so validation sees it. */
    bool
    injectRace(Vpn vpn, Tick now)
    {
        if (faults_ && faults_->fires(FaultPoint::CopyRace, now)) {
            pt_.noteWrite(vpn);
            return true;
        }
        return false;
    }

    /** Write-generation comparison — the commit/abort decision. */
    bool validate(Vpn vpn, std::uint32_t copy_start_gen) const;

    /**
     * Account one abort: unwind charge, reason + ladder bookkeeping.
     * Returns the time consumed by the unwind.
     */
    Tick noteAbort(Vpn vpn, bool partner_raced);

    /** True once the page crossed the abort ladder (legacy path only). */
    bool
    degraded(Vpn vpn) const
    {
        return abort_count_[vpn] >= kDegradeAborts;
    }

    /** True when the page holds a live shadow frame. */
    bool hasShadow(Vpn vpn) const { return shadow_pfn_[vpn] != kNoShadowPfn; }

    /** @{ Shadow bookkeeping, cross-checked by InvariantChecker. */
    static constexpr Pfn kNoShadowPfn = static_cast<Pfn>(-1);
    Pfn shadowPfn(Vpn vpn) const { return shadow_pfn_[vpn]; }
    NodeId shadowNode(Vpn vpn) const { return shadow_node_[vpn]; }
    std::uint32_t shadowGen(Vpn vpn) const { return shadow_gen_[vpn]; }
    /** Live shadow frames held on one node. */
    std::size_t
    shadowFrames(NodeId node) const
    {
        return node < shadow_count_.size() ? shadow_count_[node] : 0;
    }
    /** @} */

    /** Lifecycle counters. */
    const TxnStats &stats() const { return stats_; }

    /** Register `os.migration.txn_*` / shadow counters. */
    void registerStats(StatRegistry &reg) const;

  private:
    /** Free a live shadow frame and count it as invalidated/reclaimed. */
    Tick releaseShadow(Vpn vpn, Tick now, bool reclaimed);

    const TierTopology &topo_;
    PageTable &pt_;
    FrameAllocator &alloc_;
    MemorySystem &mem_;
    SetAssocCache &llc_;
    Tlb &tlb_;
    KernelLedger &ledger_;
    TierLrus &lrus_;
    Cycles software_per_page_;
    std::vector<std::uint64_t> &moved_in_;
    std::vector<std::uint64_t> &moved_out_;
    FaultInjector *faults_ = nullptr; //!< Not owned; may be null.
    TenantTable *tenants_ = nullptr;  //!< Not owned; may be null.

    TxnStats stats_;
    std::vector<Pfn> shadow_pfn_;           //!< Per-vpn shadow frame.
    std::vector<NodeId> shadow_node_;       //!< Tier holding the shadow.
    std::vector<std::uint32_t> shadow_gen_; //!< writeGen at retention.
    std::vector<std::uint8_t> abort_count_; //!< Degradation ladder.
    std::vector<std::size_t> shadow_count_; //!< Live shadows per node.
    //! Per-node FIFO reclaim order; entries whose (vpn, pfn) no longer
    //! match a live shadow are skipped lazily.
    std::vector<std::deque<std::pair<Vpn, Pfn>>> reclaim_q_;
};

} // namespace m5
