#include "os/anb.hh"

#include <algorithm>

#include "common/logging.hh"
#include "os/costs.hh"

namespace m5 {

AnbDaemon::AnbDaemon(const AnbConfig &cfg, PageTable &pt, Tlb &tlb,
                     KernelLedger &ledger, MigrationEngine &engine)
    : cfg_(cfg), pt_(pt), tlb_(tlb), ledger_(ledger), engine_(engine),
      scan_period_(cfg.scan_period_start),
      fault_count_(pt.numPages(), 0),
      hot_list_(cfg.hot_list_capacity)
{
    next_wake_ = scan_period_;
}

Tick
AnbDaemon::wake(Tick now)
{
    Cycles cycles = 0;
    std::size_t unmapped = 0;

    // Unmap one chunk of the address space, wrapping the cursor.  Every
    // scanned PTE costs cycles; only CXL-resident present pages are
    // actually unmapped (promotion candidates).
    const std::size_t total = pt_.numPages();
    std::size_t scanned = 0;
    while (scanned < cfg_.scan_chunk_pages && scanned < total) {
        Pte &e = pt_.pte(cursor_);
        cycles += cost::kPteUnmap;
        if (e.valid && e.present && e.node != kNodeDdr) {
            e.present = false;
            tlb_.shootdown(cursor_);
            cycles += cost::kTlbShootdown;
            ++unmapped;
        }
        cursor_ = (cursor_ + 1) % total;
        ++scanned;
    }
    pages_unmapped_ += unmapped;
    ++scans_;
    ledger_.charge(KernelWork::PteScan, cycles);

    // Adapt the scan period: few faults since the last pass means the
    // workload is in equilibrium, so back off; likewise when the promote
    // rate limit throttled us (scanning faster cannot help).  A fault
    // storm with available promotion budget speeds scanning up.  This is
    // why ANB "rarely unmaps pages" once DDR is in equilibrium (§7.2).
    if (engine_.ddrFreeFrames() == 0) {
        // DDR is at capacity: every further promotion demotes something,
        // so additional faults are mostly churn.  Back off hard — the
        // mechanism behind §7.2's "ANB rarely unmaps pages at this
        // state".
        scan_period_ = std::min(cfg_.scan_period_max, scan_period_ * 4);
    } else if (faults_since_scan_ < cfg_.scan_chunk_pages / 64) {
        scan_period_ = std::min(cfg_.scan_period_max, scan_period_ * 2);
    } else if (faults_since_scan_ > cfg_.scan_chunk_pages / 8) {
        scan_period_ = std::max(cfg_.scan_period_min, scan_period_ / 2);
    }
    faults_since_scan_ = 0;
    rate_limited_since_scan_ = false;

    next_wake_ = now + scan_period_;
    return cyclesToNs(cycles);
}

Tick
AnbDaemon::onHintFault(Vpn vpn, Tick now)
{
    ++faults_handled_;
    ++faults_since_scan_;
    ledger_.charge(KernelWork::HintFault, cost::kHintFault);
    Tick elapsed = cyclesToNs(cost::kHintFault);

    auto &count = fault_count_[vpn];
    if (count < 0xff)
        ++count;
    if (count >= cfg_.fault_threshold) {
        const Pte &e = pt_.pte(vpn);
        if (e.valid && e.node != kNodeDdr) {
            hot_list_.add(e.pfn);
            if (cfg_.migrate) {
                // Refill the promotion token bucket, then spend one token
                // per promoted page (the kernel's promote rate limit).
                tokens_ = std::min(
                    cfg_.promote_rate_pages_per_s,
                    tokens_ + static_cast<double>(now - token_time_) *
                              1e-9 * cfg_.promote_rate_pages_per_s);
                token_time_ = now;
                if (tokens_ >= 1.0) {
                    tokens_ -= 1.0;
                    elapsed += engine_.promote(vpn, now + elapsed).busy;
                    engine_.noteBatch(1); // NUMA hinting promotes singly.
                } else {
                    rate_limited_since_scan_ = true;
                }
            }
        }
        count = 0;
    }
    return elapsed;
}

void
AnbDaemon::registerStats(StatRegistry &reg) const
{
    reg.addCounter("os.anb.faults_handled", &faults_handled_);
    reg.addCounter("os.anb.pages_unmapped", &pages_unmapped_);
    reg.addCounter("os.anb.scans", &scans_);
}

} // namespace m5
