/**
 * @file
 * Automatic NUMA Balancing (ANB) model — §2.1 Solution 1.
 *
 * Periodically unmaps a chunk of pages (clears PTE present bits and shoots
 * down TLB entries); subsequent touches raise hinting page faults whose
 * handler identifies the page as hot and (optionally) promotes it.  The
 * scan period adapts like the kernel's task_scan_period: quiet scans slow
 * it down, fault storms speed it up — which is why ANB "rarely unmaps pages"
 * once migration reaches equilibrium (§7.2).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "cache/tlb.hh"
#include "common/types.hh"
#include "os/daemon.hh"
#include "os/kernel_ledger.hh"
#include "os/migration.hh"
#include "os/page_table.hh"
#include "telemetry/registry.hh"

namespace m5 {

/** ANB tunables (kernel-parameter analogues, time-scaled). */
struct AnbConfig
{
    Tick scan_period_min = msToTicks(16.0);
    Tick scan_period_max = msToTicks(2048.0);
    Tick scan_period_start = msToTicks(64.0);
    std::size_t scan_chunk_pages = 512; //!< Pages unmapped per pass.
    unsigned fault_threshold = 1;  //!< Faults before a page is "hot".
    bool migrate = true;           //!< False = record-only (§4.1 S1).
    //! Promotion rate limit (the kernel's numa_balancing promote rate
    //! limit), refilled continuously; prevents promote/demote thrash.
    double promote_rate_pages_per_s = 24576.0;
    std::size_t hot_list_capacity = 128 * 1024;
};

/** The ANB daemon. */
class AnbDaemon : public PolicyDaemon
{
  public:
    AnbDaemon(const AnbConfig &cfg, PageTable &pt, Tlb &tlb,
              KernelLedger &ledger, MigrationEngine &engine);

    Tick nextWake() const override { return next_wake_; }
    Tick wake(Tick now) override;
    Tick onHintFault(Vpn vpn, Tick now) override;
    std::string name() const override { return "ANB"; }
    const HotPageList &hotPages() const override { return hot_list_; }

    /** Current adaptive scan period. */
    Tick scanPeriod() const { return scan_period_; }

    /** Number of hinting faults handled. */
    std::uint64_t faultsHandled() const { return faults_handled_; }

    /** Number of pages unmapped across all scans. */
    std::uint64_t pagesUnmapped() const { return pages_unmapped_; }

    /** Number of scan passes executed. */
    std::uint64_t scans() const { return scans_; }

    /** Register fault/scan counters as `os.anb.*` telemetry. */
    void registerStats(StatRegistry &reg) const;

  private:
    AnbConfig cfg_;
    PageTable &pt_;
    Tlb &tlb_;
    KernelLedger &ledger_;
    MigrationEngine &engine_;

    Tick next_wake_ = 0;
    Tick scan_period_;
    Vpn cursor_ = 0;
    std::vector<std::uint8_t> fault_count_;
    std::uint64_t faults_handled_ = 0;
    std::uint64_t pages_unmapped_ = 0;
    std::uint64_t scans_ = 0;
    std::uint64_t faults_since_scan_ = 0;
    bool rate_limited_since_scan_ = false;
    //! Promotion token bucket.
    double tokens_ = 0.0;
    Tick token_time_ = 0;
    HotPageList hot_list_;
};

} // namespace m5
