#include "os/damon.hh"

#include <algorithm>

#include "common/logging.hh"
#include "os/costs.hh"

namespace m5 {

DamonDaemon::DamonDaemon(const DamonConfig &cfg, PageTable &pt,
                         KernelLedger &ledger, MigrationEngine &engine)
    : cfg_(cfg), pt_(pt), ledger_(ledger), engine_(engine), rng_(cfg.seed),
      hot_list_(cfg.hot_list_capacity)
{
    m5_assert(cfg.min_regions >= 1 && cfg.max_regions >= cfg.min_regions,
              "bad DAMON region bounds");
    // Initial even split of the whole address space.
    const std::size_t total = pt_.numPages();
    const std::size_t n =
        std::min(cfg_.min_regions, total);
    for (std::size_t i = 0; i < n; ++i) {
        DamonRegion r;
        r.start = static_cast<Vpn>(i * total / n);
        r.end = static_cast<Vpn>((i + 1) * total / n);
        primeRegion(r);
        regions_.push_back(r);
    }
    next_wake_ = cfg_.sample_interval;
    next_aggregation_ = cfg_.aggregation_interval;
}

std::uint64_t
DamonDaemon::samplesPerAggregation() const
{
    return cfg_.aggregation_interval / cfg_.sample_interval;
}

void
DamonDaemon::primeRegion(DamonRegion &r)
{
    m5_assert(r.end > r.start, "empty DAMON region");
    r.sample_vpn = r.start + rng_.below(r.end - r.start);
    Pte &e = pt_.pte(r.sample_vpn);
    if (e.valid)
        e.accessed = false;
}

void
DamonDaemon::sampleOnce()
{
    ++samples_;
    for (auto &r : regions_) {
        const Pte &e = pt_.pte(r.sample_vpn);
        if (e.valid && e.accessed)
            ++r.nr_accesses;
        primeRegion(r);
    }
    ledger_.charge(KernelWork::PteScan,
                   cost::kDamonSampleCheck *
                   static_cast<Cycles>(regions_.size()));
}

void
DamonDaemon::mergeRegions()
{
    const auto threshold = static_cast<std::uint32_t>(
        cfg_.merge_threshold_fraction *
        static_cast<double>(samplesPerAggregation()));
    std::vector<DamonRegion> merged;
    merged.reserve(regions_.size());
    for (const auto &r : regions_) {
        if (!merged.empty() &&
            merged.size() > cfg_.min_regions &&
            merged.back().end == r.start) {
            auto &prev = merged.back();
            const std::uint32_t diff = prev.nr_accesses > r.nr_accesses
                ? prev.nr_accesses - r.nr_accesses
                : r.nr_accesses - prev.nr_accesses;
            if (diff <= threshold) {
                // Weighted-average the access counts, widen the region.
                const auto w_prev =
                    static_cast<double>(prev.end - prev.start);
                const auto w_cur = static_cast<double>(r.end - r.start);
                prev.nr_accesses = static_cast<std::uint32_t>(
                    (prev.nr_accesses * w_prev + r.nr_accesses * w_cur) /
                    (w_prev + w_cur));
                prev.end = r.end;
                prev.age = std::min(prev.age, r.age) + 1;
                continue;
            }
        }
        merged.push_back(r);
    }
    regions_ = std::move(merged);
}

void
DamonDaemon::splitRegions()
{
    if (regions_.size() >= cfg_.max_regions * 3 / 4)
        return;
    std::vector<DamonRegion> split;
    split.reserve(regions_.size() * 2);
    for (const auto &r : regions_) {
        const Vpn len = r.end - r.start;
        if (len < 2 || split.size() + 1 >= cfg_.max_regions) {
            split.push_back(r);
            continue;
        }
        // Split at a random interior point, like damon_split_region_at().
        const Vpn cut = r.start + 1 + rng_.below(len - 1);
        DamonRegion left = r;
        left.end = cut;
        left.age = 0;
        DamonRegion right = r;
        right.start = cut;
        right.age = 0;
        primeRegion(left);
        primeRegion(right);
        split.push_back(left);
        split.push_back(right);
    }
    regions_ = std::move(split);
}

Tick
DamonDaemon::aggregate(Tick now)
{
    (void)now; // Plan application is deferred to applyPlanChunk().
    ++aggregations_;
    const auto hot_min = static_cast<std::uint32_t>(
        cfg_.hot_access_fraction *
        static_cast<double>(samplesPerAggregation()));

    // Classify, emit hot pages (record), and promote (migrate mode) from
    // the hottest regions first under the per-interval quota.
    std::vector<const DamonRegion *> hot;
    for (const auto &r : regions_) {
        if (r.nr_accesses >= std::max<std::uint32_t>(hot_min, 1))
            hot.push_back(&r);
    }
    std::sort(hot.begin(), hot.end(),
        [](const DamonRegion *a, const DamonRegion *b) {
            return a->nr_accesses > b->nr_accesses;
        });

    // Rebuild the deferred DAMOS plan: record hot pages now, but apply
    // the (cost-bearing) migration attempts in per-sample chunks.
    Tick elapsed = 0;
    plan_.clear();
    plan_cursor_ = 0;
    // DAMOS quota auto-tuning: once DDR is at capacity, further
    // migration is churn, so the effective quota collapses.
    std::size_t quota = engine_.ddrFreeFrames() > 0
        ? cfg_.promote_quota_pages
        : cfg_.promote_quota_pages / 8;
    for (const DamonRegion *r : hot) {
        for (Vpn vpn = r->start; vpn < r->end && quota > 0; ++vpn) {
            const Pte &e = pt_.pte(vpn);
            if (!e.valid)
                continue;
            if (e.node != kNodeDdr)
                hot_list_.add(e.pfn);
            plan_.push_back(vpn);
            --quota;
        }
        if (quota == 0)
            break;
    }

    mergeRegions();
    splitRegions();
    for (auto &r : regions_)
        r.nr_accesses = 0;

    ledger_.charge(KernelWork::DamonAggregate,
                   cost::kDamonAggregatePerRegion *
                   static_cast<Cycles>(regions_.size()));
    elapsed += cyclesToNs(cost::kDamonAggregatePerRegion *
                          static_cast<Cycles>(regions_.size()));
    return elapsed;
}

Tick
DamonDaemon::applyPlanChunk(Tick now)
{
    // The per-page DAMOS validation runs even in record-only mode: the
    // §4.2 methodology disables only migrate_pages(), not the scheme's
    // checks.
    if (plan_cursor_ >= plan_.size())
        return 0;
    const std::size_t chunk = std::max<std::size_t>(1,
        cfg_.promote_quota_pages /
        std::max<std::uint64_t>(1, samplesPerAggregation()));
    Tick elapsed = 0;
    Cycles attempt_cycles = 0;
    std::size_t issued = 0;
    for (std::size_t i = 0; i < chunk && plan_cursor_ < plan_.size();
         ++i, ++plan_cursor_) {
        const Vpn vpn = plan_[plan_cursor_];
        attempt_cycles += cost::kDamosAttempt;
        if (cfg_.migrate && pt_.pte(vpn).node != kNodeDdr) {
            elapsed += engine_.promote(vpn, now + elapsed).busy;
            ++issued;
        }
    }
    engine_.noteBatch(issued);
    ledger_.charge(KernelWork::DamonAggregate, attempt_cycles);
    return elapsed + cyclesToNs(attempt_cycles);
}

Tick
DamonDaemon::wake(Tick now)
{
    sampleOnce();
    Tick elapsed = cyclesToNs(cost::kDamonSampleCheck *
                              static_cast<Cycles>(regions_.size()));
    elapsed += applyPlanChunk(now + elapsed);
    if (now >= next_aggregation_) {
        elapsed += aggregate(now + elapsed);
        next_aggregation_ = now + cfg_.aggregation_interval;
    }
    next_wake_ = now + cfg_.sample_interval;
    return elapsed;
}

void
DamonDaemon::registerStats(StatRegistry &reg) const
{
    reg.addCounter("os.damon.samples", &samples_);
    reg.addCounter("os.damon.aggregations", &aggregations_);
}

} // namespace m5
