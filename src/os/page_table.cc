#include "os/page_table.hh"

#include <utility>

#include "common/logging.hh"

namespace m5 {

PageTable::PageTable(std::size_t num_pages)
    : ptes_(num_pages)
{
    m5_assert(num_pages > 0, "page table needs at least one page");
    rmap_.reserve(num_pages);
}

void
PageTable::map(Vpn vpn, Pfn pfn, NodeId node)
{
    m5_assert(vpn < ptes_.size(), "vpn %lu out of range",
              static_cast<unsigned long>(vpn));
    Pte &e = ptes_[vpn];
    m5_assert(!e.valid, "vpn %lu already mapped",
              static_cast<unsigned long>(vpn));
    e.pfn = pfn;
    e.node = node;
    e.valid = true;
    e.present = true;
    e.accessed = false;
    rmap_[pfn] = vpn;
    if (node_pages_.size() <= node)
        node_pages_.resize(node + 1, 0);
    ++node_pages_[node];
}

void
PageTable::remap(Vpn vpn, Pfn new_pfn, NodeId new_node)
{
    m5_assert(vpn < ptes_.size(), "vpn %lu out of range",
              static_cast<unsigned long>(vpn));
    Pte &e = ptes_[vpn];
    m5_assert(e.valid, "remapping unmapped vpn %lu",
              static_cast<unsigned long>(vpn));
    rmap_.erase(e.pfn);
    --node_pages_[e.node];
    e.pfn = new_pfn;
    e.node = new_node;
    e.present = true;
    rmap_[new_pfn] = vpn;
    if (node_pages_.size() <= new_node)
        node_pages_.resize(new_node + 1, 0);
    ++node_pages_[new_node];
}

void
PageTable::swapFrames(Vpn a, Vpn b)
{
    m5_assert(a < ptes_.size() && b < ptes_.size() && a != b,
              "bad swap %lu <-> %lu", static_cast<unsigned long>(a),
              static_cast<unsigned long>(b));
    Pte &ea = ptes_[a];
    Pte &eb = ptes_[b];
    m5_assert(ea.valid && eb.valid, "swap of unmapped vpn");
    std::swap(ea.pfn, eb.pfn);
    std::swap(ea.node, eb.node);
    ea.present = true;
    eb.present = true;
    // The reverse map and per-node counts stay balanced: each frame
    // still backs exactly one VPN, and one page left each node while one
    // arrived (node_pages_ needs no adjustment).
    rmap_[ea.pfn] = a;
    rmap_[eb.pfn] = b;
}

Pte &
PageTable::pte(Vpn vpn)
{
    m5_assert(vpn < ptes_.size(), "vpn %lu out of range",
              static_cast<unsigned long>(vpn));
    return ptes_[vpn];
}

const Pte &
PageTable::pte(Vpn vpn) const
{
    m5_assert(vpn < ptes_.size(), "vpn %lu out of range",
              static_cast<unsigned long>(vpn));
    return ptes_[vpn];
}

Vpn
PageTable::vpnOfPfn(Pfn pfn) const
{
    auto it = rmap_.find(pfn);
    return it == rmap_.end() ? static_cast<Vpn>(ptes_.size()) : it->second;
}

Pfn
PageTable::walk(Vpn vpn)
{
    Pte &e = pte(vpn);
    m5_assert(e.valid && e.present, "walk of non-present vpn %lu",
              static_cast<unsigned long>(vpn));
    e.accessed = true;
    return e.pfn;
}

std::size_t
PageTable::pagesOnNode(NodeId node) const
{
    return node < node_pages_.size() ? node_pages_[node] : 0;
}

} // namespace m5
