/**
 * @file
 * Per-node physical frame allocator.
 *
 * The DDR tier's capacity is set to the cgroup limit the paper imposes
 * (3GB out of an 8GB footprint, §6), so allocator exhaustion on the DDR
 * node *is* the cgroup bound: promotion beyond it requires demoting a
 * victim first.
 *
 * Multi-tenant colocation (docs/MULTITENANT.md) adds per-tenant caps on
 * one node: enableTenantCaps() arms per-tenant frame accounting on the
 * top tier, after which allocateFor()/freeFor() charge the owning
 * tenant and an allocation beyond the tenant's cap fails exactly like
 * node exhaustion — the migration engine then demotes a same-tenant
 * victim first.  Untenanted runs never call the *For variants and are
 * byte-identical to builds without tenant accounting.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hh"
#include "mem/memsys.hh"

namespace m5 {

/** Free-list frame allocator over every tier of a MemorySystem. */
class FrameAllocator
{
  public:
    /** Build free lists covering all frames of all tiers. */
    explicit FrameAllocator(const MemorySystem &mem);

    /** Allocate one frame on a node; nullopt when the node is full. */
    std::optional<Pfn> allocate(NodeId node);

    /** Return a frame to its node's free list. */
    void free(NodeId node, Pfn pfn);

    /** Frames still free on a node. */
    std::size_t freeFrames(NodeId node) const;

    /** Frames in use on a node. */
    std::size_t usedFrames(NodeId node) const;

    /** Total frames on a node. */
    std::size_t totalFrames(NodeId node) const;

    /** @{ Per-tenant cap accounting (multi-tenant runs only). */

    /**
     * Arm per-tenant frame accounting on `node` (the top tier).  Each
     * tenant starts with zero frames charged; `caps[t]` is tenant t's
     * budget.  Must be called before any allocateFor on that node.
     */
    void enableTenantCaps(NodeId node, std::vector<std::size_t> caps);

    /** True once enableTenantCaps has armed accounting. */
    bool tenantCapsEnabled() const { return cap_node_ != kNoCapNode; }

    /** The node tenant caps apply to. */
    NodeId capNode() const { return cap_node_; }

    /**
     * Allocate one frame on a node for a tenant.  On the cap node the
     * allocation fails (nullopt) when the tenant is at its cap, even if
     * the node itself still has free frames; elsewhere this is plain
     * allocate().
     */
    std::optional<Pfn> allocateFor(NodeId node, TenantId tenant);

    /** Return a tenant's frame; uncharges it on the cap node. */
    void freeFor(NodeId node, Pfn pfn, TenantId tenant);

    /**
     * Move one cap-node frame charge between tenants without touching
     * the free lists — the accounting half of an atomic page exchange
     * whose top-tier frame changed owners.
     */
    void transferCapCharge(TenantId from, TenantId to);

    /** Frames tenant t currently holds on the cap node. */
    std::size_t tenantUsed(TenantId tenant) const;

    /** Tenant t's cap-node frame budget. */
    std::size_t tenantCap(TenantId tenant) const;

    /** The whole per-tenant occupancy vector — stable storage for the
     *  `tenant.<id>.ddr_frames` gauges (TenantTable::registerStats). */
    const std::vector<std::size_t> &tenantUsedAll() const
    {
        return tenant_used_;
    }

    /** True when the tenant cannot take another cap-node frame. */
    bool
    tenantAtCap(TenantId tenant) const
    {
        return tenantUsed(tenant) >= tenantCap(tenant);
    }

    /** @} */

  private:
    struct NodeState
    {
        std::vector<Pfn> free_list;
        std::size_t total = 0;
    };

    static constexpr NodeId kNoCapNode = static_cast<NodeId>(-1);

    std::vector<NodeState> nodes_;
    NodeId cap_node_ = kNoCapNode;
    std::vector<std::size_t> tenant_caps_;
    std::vector<std::size_t> tenant_used_;
};

} // namespace m5
