/**
 * @file
 * Per-node physical frame allocator.
 *
 * The DDR tier's capacity is set to the cgroup limit the paper imposes
 * (3GB out of an 8GB footprint, §6), so allocator exhaustion on the DDR
 * node *is* the cgroup bound: promotion beyond it requires demoting a
 * victim first.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hh"
#include "mem/memsys.hh"

namespace m5 {

/** Free-list frame allocator over every tier of a MemorySystem. */
class FrameAllocator
{
  public:
    /** Build free lists covering all frames of all tiers. */
    explicit FrameAllocator(const MemorySystem &mem);

    /** Allocate one frame on a node; nullopt when the node is full. */
    std::optional<Pfn> allocate(NodeId node);

    /** Return a frame to its node's free list. */
    void free(NodeId node, Pfn pfn);

    /** Frames still free on a node. */
    std::size_t freeFrames(NodeId node) const;

    /** Frames in use on a node. */
    std::size_t usedFrames(NodeId node) const;

    /** Total frames on a node. */
    std::size_t totalFrames(NodeId node) const;

  private:
    struct NodeState
    {
        std::vector<Pfn> free_list;
        std::size_t total = 0;
    };

    std::vector<NodeState> nodes_;
};

} // namespace m5
