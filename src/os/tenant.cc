#include "os/tenant.hh"

#include <algorithm>

#include "common/env.hh"
#include "common/logging.hh"

namespace m5 {

namespace {

/** Split `s` on `sep`, keeping empty fields (they are spec errors the
 *  caller diagnoses). */
std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = s.find(sep, start);
        if (pos == std::string::npos) {
            out.push_back(s.substr(start));
            return out;
        }
        out.push_back(s.substr(start, pos - start));
        start = pos + 1;
    }
}

double
parseNumber(const std::string &field, const std::string &value)
{
    const std::optional<double> v = parseDouble(value);
    if (!v) {
        m5_fatal("tenant spec: bad %s value '%s'", field.c_str(),
                 value.c_str());
    }
    return *v;
}

} // namespace

std::vector<TenantSpec>
TenantSpec::parseList(const std::string &spec)
{
    if (spec.empty())
        m5_fatal("empty tenant spec");
    std::vector<TenantSpec> tenants;
    for (const std::string &field : split(spec, ',')) {
        const std::vector<std::string> parts = split(field, ':');
        if (parts[0].empty()) {
            m5_fatal("tenant spec '%s': missing benchmark",
                     field.c_str());
        }
        TenantSpec t;
        t.benchmark = parts[0];
        for (std::size_t i = 1; i < parts.size(); ++i) {
            const std::size_t eq = parts[i].find('=');
            if (eq == std::string::npos) {
                m5_fatal("tenant spec '%s': option '%s' is not key=value",
                         field.c_str(), parts[i].c_str());
            }
            const std::string key = parts[i].substr(0, eq);
            const std::string value = parts[i].substr(eq + 1);
            if (key == "cap") {
                t.ddr_cap = parseNumber(key, value);
                // cap=0 means "no DDR ever": the tenant could never be
                // promoted and the spec is certainly a typo — reject it
                // here rather than let the run limp along.
                if (t.ddr_cap <= 0.0 || t.ddr_cap > 1.0) {
                    m5_fatal("tenant spec '%s': cap must be in (0, 1], "
                             "got %s",
                             field.c_str(), value.c_str());
                }
            } else if (key == "share") {
                const double share = parseNumber(key, value);
                if (share < 1.0 ||
                    share != static_cast<double>(
                        static_cast<unsigned>(share))) {
                    m5_fatal("tenant spec '%s': share must be an integer "
                             ">= 1, got %s",
                             field.c_str(), value.c_str());
                }
                t.share = static_cast<unsigned>(share);
            } else {
                m5_fatal("tenant spec '%s': unknown option '%s'",
                         field.c_str(), key.c_str());
            }
        }
        tenants.push_back(std::move(t));
    }
    return tenants;
}

std::string
TenantSpec::describe() const
{
    std::string out = benchmark;
    if (ddr_cap < 1.0)
        out += strprintf(":cap=%g", ddr_cap);
    if (share != 1)
        out += strprintf(":share=%u", share);
    return out;
}

TenantTable::TenantTable(std::vector<Entry> entries)
    : entries_(std::move(entries)), counters_(entries_.size())
{
    m5_assert(!entries_.empty(), "TenantTable needs tenants");
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        m5_assert(entries_[i].vpn_base == total_pages_,
                  "tenant %zu range is not contiguous", i);
        m5_assert(entries_[i].pages > 0, "tenant %zu has no pages", i);
        total_pages_ += entries_[i].pages;
    }
}

TenantId
TenantTable::tenantOf(Vpn vpn) const
{
    if (vpn >= total_pages_) {
        m5_fatal("vpn %lu outside all tenant ranges",
                 static_cast<unsigned long>(vpn));
    }
    // Tenant ranges are contiguous and sorted; upper_bound on the bases
    // finds the owner in O(log n) of a handful of tenants.
    auto it = std::upper_bound(
        entries_.begin(), entries_.end(), vpn,
        [](Vpn v, const Entry &e) { return v < e.vpn_base; });
    return static_cast<TenantId>(it - entries_.begin() - 1);
}

void
TenantTable::registerStats(StatRegistry &reg,
                           const std::vector<std::size_t> &ddr_used) const
{
    // Stat names must be lowercase [a-z0-9_.-]; benchmark names are not
    // (cactuBSSN_r), so tenants register under their numeric id and the
    // report section maps ids back to names.
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        const std::string p = "tenant." + std::to_string(i) + ".";
        const TenantCounters &c = counters_[i];
        reg.addCounter(p + "accesses", &c.accesses);
        reg.addCounter(p + "ddr_hits", &c.ddr_hits);
        reg.addCounter(p + "lower_hits", &c.lower_hits);
        reg.addCounter(p + "promoted", &c.promoted);
        reg.addCounter(p + "demoted", &c.demoted);
        reg.addCounter(p + "cap_demotions", &c.cap_demotions);
        reg.addCounter(p + "cap_rejects", &c.cap_rejects);
        reg.addCounter(p + "nominated", &c.nominated);
        reg.addCounter(p + "quota_deferred", &c.quota_deferred);
        reg.addCounter(p + "access_time", &c.access_time);
        reg.addHistogram(p + "access_latency", &c.access_latency);
        reg.addGauge(p + "ddr_frames", [&ddr_used, i]() {
            return static_cast<double>(ddr_used[i]);
        });
        reg.addGauge(p + "ddr_cap", [this, i]() {
            return static_cast<double>(entries_[i].cap_frames);
        });
    }
}

} // namespace m5
