#include "os/kernel_ledger.hh"

#include "common/logging.hh"

namespace m5 {

std::string
kernelWorkName(KernelWork w)
{
    switch (w) {
      case KernelWork::PteScan:
        return "pte-scan";
      case KernelWork::TlbShootdown:
        return "tlb-shootdown";
      case KernelWork::HintFault:
        return "hint-fault";
      case KernelWork::DamonAggregate:
        return "damon-aggregate";
      case KernelWork::Migration:
        return "migration";
      case KernelWork::ManagerUser:
        return "m5-manager";
      case KernelWork::Baseline:
        return "baseline";
      case KernelWork::NumCategories:
        break;
    }
    m5_panic("unknown KernelWork category");
}

Cycles
KernelLedger::total() const
{
    Cycles t = 0;
    for (Cycles c : cycles_)
        t += c;
    return t;
}

Cycles
KernelLedger::totalOverhead() const
{
    return total() - category(KernelWork::Baseline);
}

Cycles
KernelLedger::identificationCycles() const
{
    return totalOverhead() - category(KernelWork::Migration);
}

void
KernelLedger::registerStats(StatRegistry &reg) const
{
    const auto n = static_cast<unsigned>(KernelWork::NumCategories);
    for (unsigned i = 0; i < n; ++i) {
        reg.addCounter(
            "os.kernel." + kernelWorkName(static_cast<KernelWork>(i)),
            &cycles_[i]);
    }
}

} // namespace m5
