/**
 * @file
 * DAMON model — §2.1 Solution 2 (region-based PTE access-bit sampling).
 *
 * DAMON divides the address space into adaptive regions; each sampling
 * interval it checks one page's PTE access bit per region, and each
 * aggregation interval it classifies regions by accumulated access counts,
 * then merges similar neighbours and splits regions to keep the region
 * budget.  The access bit is only re-set by a page walk after a TLB miss,
 * so DAMON's signal is inherently TLB-filtered (§2.1).
 *
 * DAMON keeps scanning at equilibrium — the behaviour that degrades Redis
 * p99 by 16% in Figure 9 — so its sampling cost is charged unconditionally.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "os/daemon.hh"
#include "os/kernel_ledger.hh"
#include "os/migration.hh"
#include "os/page_table.hh"
#include "telemetry/registry.hh"

namespace m5 {

/** DAMON tunables (damon sysfs analogues, time-scaled). */
struct DamonConfig
{
    Tick sample_interval = msToTicks(2.0);
    Tick aggregation_interval = msToTicks(40.0);
    std::size_t min_regions = 100;
    std::size_t max_regions = 1000;
    //! A region is hot when it was found accessed in at least this
    //! fraction of the aggregation interval's samples.
    double hot_access_fraction = 0.1;
    //! Merge neighbours whose access counts differ by at most this
    //! fraction of the per-aggregation sample count.
    double merge_threshold_fraction = 0.1;
    bool migrate = true;            //!< False = record-only (§4.1 S1).
    std::size_t promote_quota_pages = 3072; //!< Per aggregation interval.
    std::size_t hot_list_capacity = 128 * 1024;
    std::uint64_t seed = 0xda30ULL;
};

/** One monitoring region [start, end) in VPN space. */
struct DamonRegion
{
    Vpn start;
    Vpn end;
    std::uint32_t nr_accesses = 0; //!< Positive samples this aggregation.
    Vpn sample_vpn = 0;            //!< Currently primed page.
    std::uint32_t age = 0;         //!< Aggregations without change.
};

/** The DAMON daemon. */
class DamonDaemon : public PolicyDaemon
{
  public:
    DamonDaemon(const DamonConfig &cfg, PageTable &pt,
                KernelLedger &ledger, MigrationEngine &engine);

    Tick nextWake() const override { return next_wake_; }
    Tick wake(Tick now) override;
    std::string name() const override { return "DAMON"; }
    const HotPageList &hotPages() const override { return hot_list_; }

    /** Current regions (tests / inspection). */
    const std::vector<DamonRegion> &regions() const { return regions_; }

    /** Samples taken per aggregation interval. */
    std::uint64_t samplesPerAggregation() const;

    /** Sampling passes executed (one PTE check per region each). */
    std::uint64_t samples() const { return samples_; }

    /** Aggregation intervals completed. */
    std::uint64_t aggregations() const { return aggregations_; }

    /** Register sampling counters as `os.damon.*` telemetry. */
    void registerStats(StatRegistry &reg) const;

  private:
    void sampleOnce();
    Tick aggregate(Tick now);
    Tick applyPlanChunk(Tick now);
    void primeRegion(DamonRegion &r);
    void mergeRegions();
    void splitRegions();

    DamonConfig cfg_;
    PageTable &pt_;
    KernelLedger &ledger_;
    MigrationEngine &engine_;
    Rng rng_;

    std::vector<DamonRegion> regions_;
    //! Deferred DAMOS plan: pages of hot regions, hottest region first,
    //! applied in per-sample chunks so migration never bursts (real
    //! DAMOS quotas are charged incrementally).
    std::vector<Vpn> plan_;
    std::size_t plan_cursor_ = 0;
    Tick next_wake_ = 0;
    Tick next_aggregation_ = 0;
    std::uint64_t samples_ = 0;
    std::uint64_t aggregations_ = 0;
    HotPageList hot_list_;
};

} // namespace m5
