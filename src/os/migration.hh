/**
 * @file
 * Page migration engine — the model of migrate_pages() plus demotion,
 * generalized to an N-tier TierTopology (docs/TOPOLOGY.md).
 *
 * Promoting a page when the top tier is full first demotes an MGLRU
 * victim (§7, "whenever the page-migration solution migrates a certain
 * number of pages to DDR DRAM, it demotes the same number of pages to
 * CXL DRAM").  On top of the legacy promote/demote verbs the engine
 * speaks a general tier-to-tier vocabulary:
 *
 *  - move(vpn, dst, now): migrate one page to any tier with a free
 *    frame — the Nomad-style primitive both verbs are built from.
 *  - exchange(hot, cold, now): AutoTiering-style atomic page exchange —
 *    the two pages swap frames, so a promotion needs no free top-tier
 *    frame.  When a `ddr_alloc` fault says frame allocation failed, the
 *    engine falls back to exchanging with the coldest top-tier page
 *    instead of reporting TransientNoFrame.
 *  - conservative/opportunistic promotion: with >= 3 tiers, a promotion
 *    that cannot reach the full top tier (no victim either) falls back
 *    to the best-fit intermediate tier instead of failing on capacity.
 *  - transactional mode (setTxnEnabled, docs/MIGRATION.md): the copy
 *    streams while the page stays mapped, a write-generation check
 *    decides commit vs abort (AbortedRace retries via the Promoter,
 *    degrading per page after K aborts), and committed promotions
 *    retain a shadow frame so clean demotions are zero-copy PTE flips.
 *
 * Each migrated page costs:
 *  - software overhead (rmap walk, PTE update, TLB shootdown, LRU upkeep),
 *  - an explicit 64-word copy routed through the memory system, so the CXL
 *    controller's counters observe migration reads exactly like the real
 *    PAC does, and the copy shows up in Monitor's bandwidth statistics.
 *    The copy stream is charged against the source->destination EdgeCost
 *    of the topology (defaults reproduce the historical 12 GB/s model).
 * Together ≈ 54us per 4KB page (§7.2).
 */

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cache/cache.hh"
#include "cache/tlb.hh"
#include "common/types.hh"
#include "mem/memsys.hh"
#include "mem/topology.hh"
#include "os/costs.hh"
#include "os/frame_alloc.hh"
#include "os/kernel_ledger.hh"
#include "os/mglru.hh"
#include "os/page_table.hh"
#include "os/tenant.hh"
#include "os/txn_migrate.hh"
#include "fault/fault.hh"
#include "telemetry/registry.hh"

namespace m5 {

/** Migration cost model (per-edge copy costs live in EdgeCost). */
struct MigrationCosts
{
    //! Software overhead per migrated page (rmap walk, PTE update, TLB
    //! shootdown IPIs, LRU bookkeeping).  The paper's ~54us/page (§7.2) is
    //! dominated by this term; scaled runs shrink it proportionally so the
    //! fill-time : runtime ratio matches the full-scale system.
    Cycles software_per_page = cost::kMigratePageSoftware;
};

/** Migration outcome counters. */
struct MigrationStats
{
    std::uint64_t promoted = 0;
    std::uint64_t demoted = 0;
    std::uint64_t rejected_pinned = 0;
    std::uint64_t rejected_not_cxl = 0;
    std::uint64_t failed_capacity = 0;
    Tick busy_time = 0; //!< Wall time consumed migrating.
    //! Transient migrate_pages() failures (fault injection; the page
    //! stayed mapped at its source and may be retried).
    std::uint64_t transient_fail = 0;
    //! Retries issued against previously transient pages (Promoter).
    std::uint64_t retries = 0;
    //! Pages dropped from the retry pipeline (max attempts / queue full).
    std::uint64_t dropped = 0;
    //! Promotions satisfied by an atomic page exchange with a cold
    //! top-tier victim (no frame allocation needed).
    std::uint64_t exchanged = 0;
    //! Exchange fallbacks that found no usable victim (the promotion
    //! then failed TransientNoFrame as before).
    std::uint64_t exchange_failed = 0;
    //! Opportunistic promotions placed on a best-fit intermediate tier
    //! because the top tier was full with no victim (N >= 3 tiers).
    std::uint64_t placed_lower = 0;
    //! General move() calls that were neither a promotion to the top
    //! tier nor a demotion to a slower one (lateral/multi-hop moves).
    std::uint64_t moved_lateral = 0;
};

/** Why one migration call ended the way it did. */
enum class MigrateOutcome : std::uint8_t
{
    Done,             //!< Page now resident on the requested tier.
    TransientBusy,    //!< migrate_pages() hit EBUSY / a refcount race;
                      //!< the page stays at its source — retryable.
    TransientNoFrame, //!< Destination frame allocation failed under
                      //!< pressure; retryable once pressure clears.
    RejectedPinned,   //!< Permanent: page is DMA-pinned.
    RejectedNotCxl,   //!< Permanent: page not on a lower tier (or
                      //!< unmapped / already at the destination).
    FailedCapacity,   //!< Top tier full and no demotion victim available.
    ExchangedInstead, //!< Promotion satisfied by an atomic page exchange
                      //!< with a cold top-tier victim (success).
    PlacedLowerTier,  //!< Promotion landed on a best-fit intermediate
                      //!< tier instead of the full top tier (success).
    AbortedRace,      //!< A store raced the transactional copy window;
                      //!< the transaction unwound and the page stays at
                      //!< its source — retryable (docs/MIGRATION.md).
};

/**
 * Per-page result of a migration attempt (Nomad-style semantics: on any
 * failure the page is still mapped at its source — nothing is lost,
 * only time).  [[nodiscard]] because ignoring a failed migration is how
 * real pipelines leak hot pages onto the slow tier; m5lint's
 * no-unchecked-migrate-result rule backs this up across call sites.
 */
struct [[nodiscard]] MigrateResult
{
    MigrateOutcome outcome = MigrateOutcome::Done;
    Tick busy = 0; //!< Time consumed (nonzero even on some failures).

    /** The page landed somewhere better (Done / ExchangedInstead /
     *  PlacedLowerTier). */
    bool
    ok() const
    {
        return outcome == MigrateOutcome::Done ||
               outcome == MigrateOutcome::ExchangedInstead ||
               outcome == MigrateOutcome::PlacedLowerTier;
    }

    /** Failure that a later retry may clear. */
    bool
    transient() const
    {
        return outcome == MigrateOutcome::TransientBusy ||
               outcome == MigrateOutcome::TransientNoFrame ||
               outcome == MigrateOutcome::AbortedRace;
    }

    /** Stable reason string ("ok", "busy", "no_frame", "pinned",
     *  "not_cxl", "failed_capacity", "exchanged", "placed_lower",
     *  "copy_race") — shared by traces and reports. */
    const char *reason() const;
};

/** Aggregate result of promoteBatch (partial batches commit). */
struct [[nodiscard]] BatchResult
{
    Tick busy = 0;
    std::uint64_t promoted = 0;  //!< Pages that landed on a faster tier.
    std::uint64_t transient = 0; //!< Retryable failures.
    std::uint64_t rejected = 0;  //!< Permanent rejects + capacity.
};

/** Moves pages between topology tiers with full cost accounting. */
class MigrationEngine
{
  public:
    MigrationEngine(const TierTopology &topo, PageTable &pt,
                    FrameAllocator &alloc, MemorySystem &mem,
                    SetAssocCache &llc, Tlb &tlb, KernelLedger &ledger,
                    TierLrus &lrus, const MigrationCosts &costs = {});

    /**
     * Move one page to an arbitrary destination tier — the general
     * tier-graph primitive.  Rejects unmapped/pinned pages and
     * moves-to-self; fails TransientNoFrame when the destination has no
     * free frame (no victim is evicted on this path).
     */
    MigrateResult move(Vpn vpn, NodeId dst, Tick now);

    /**
     * Atomically exchange two pages' frames (AutoTiering OPM): `hot`
     * (on a slower tier) and `cold` (on a faster one) swap places with
     * no free frame required.  Both must be mapped, unpinned, and on
     * different tiers.  On any failure neither page moves.
     */
    MigrateResult exchange(Vpn hot, Vpn cold, Tick now);

    /**
     * Promote one page toward the top tier, demoting an MGLRU victim if
     * the top tier is full.  Under an injected `ddr_alloc` failure the
     * engine falls back to exchange() with the coldest top-tier page;
     * with >= 3 tiers a promotion with no victim falls back to the
     * best-fit intermediate tier (PlacedLowerTier).
     *
     * @param vpn Page to promote.
     * @param now Current simulated time.
     * @return Outcome + time consumed; on any failure the page is still
     *         mapped at its source.
     */
    MigrateResult promote(Vpn vpn, Tick now);

    /**
     * Promote a batch.  Partial batches commit: each page succeeds or
     * fails independently, and a transient failure mid-batch does not
     * unwind earlier promotions.
     */
    BatchResult promoteBatch(const std::vector<Vpn> &vpns, Tick now);

    /** Demote one specific page to the next slower tier with room. */
    MigrateResult demote(Vpn vpn, Tick now);

    /** Statistics. */
    const MigrationStats &stats() const { return stats_; }

    /** True if a page may legally be promoted right now. */
    bool canPromote(Vpn vpn) const;

    /** Free frames remaining on the top (DDR) node (daemon pacing). */
    std::size_t ddrFreeFrames() const;

    /** The topology this engine migrates over. */
    const TierTopology &topology() const { return topo_; }

    /**
     * Enable/disable the exchange fallback for `ddr_alloc` failures.
     * On by default; bench/resil_fault_sweep compares both settings.
     */
    void setExchangeEnabled(bool on) { exchange_enabled_ = on; }

    /** True when the exchange fallback is armed. */
    bool exchangeEnabled() const { return exchange_enabled_; }

    /**
     * Enable/disable transactional migration (docs/MIGRATION.md): the
     * copy streams while the page stays mapped, a write-generation
     * check decides commit vs abort, and committed promotions retain a
     * shadow frame on the source tier so clean demotions are free.
     * Off, the engine takes the legacy stop-the-world path everywhere
     * and is byte-identical to the pre-transactional simulator.  Toggle
     * at construction time only — disabling with live shadows would
     * leak their frames.
     */
    void setTxnEnabled(bool on);

    /** True when transactional migration is armed. */
    bool txnEnabled() const { return txn_ != nullptr; }

    /** The transactional migrator (nullptr when disabled). */
    const TransactionalMigrator *txn() const { return txn_.get(); }
    TransactionalMigrator *txn() { return txn_.get(); }

    /**
     * A store retired against `vpn` (hot path; the system only calls
     * this when transactional mode is on).  Bumps the page's write
     * generation and invalidates its shadow; returns kernel busy time.
     */
    Tick
    noteWrite(Vpn vpn, Tick now)
    {
        return txn_ ? txn_->noteWrite(vpn, now) : 0;
    }

    /** Record one promotion batch of `pages` pages in the batch-size
     *  histogram.  Policies that loop promote() themselves (ANB, DAMON,
     *  PEBS, Promoter) call this once per wake; promoteBatch does it
     *  internally.  Empty batches are not recorded. */
    void
    noteBatch(std::size_t pages)
    {
        if (pages)
            batch_hist_.add(pages);
    }

    /** Promotion-batch size distribution (pages per batch). */
    const StatHistogram &batchPagesHistogram() const { return batch_hist_; }

    /**
     * Attach a fault injector (nullptr detaches).  Must precede
     * registerStats: the retry/transient/dropped counters are only
     * published when faults are in play, so fault-free telemetry stays
     * byte-identical (docs/FAULTS.md).
     */
    void
    attachFaults(FaultInjector *faults)
    {
        faults_ = faults;
        if (txn_)
            txn_->attachFaults(faults);
    }

    /**
     * Attach the tenant table (nullptr detaches).  With tenants
     * attached, top-tier frames are charged per tenant through the
     * allocator's cap accounting: a promotion for a tenant at its cap
     * first demotes the coldest *same-tenant* victim (cap_demotions) or
     * fails FailedCapacity when that tenant has no demotable page
     * (cap_rejects), and an atomic exchange moves the frame charge
     * between the two owners.  Untenanted runs take none of these
     * branches and stay byte-identical (docs/MULTITENANT.md).
     */
    void
    attachTenants(TenantTable *tenants)
    {
        tenants_ = tenants;
        if (txn_)
            txn_->attachTenants(tenants);
    }

    /** True when a tenant table is attached. */
    bool tenantsActive() const { return tenants_ != nullptr; }

    /** True when a fault injector is attached. */
    bool faultsActive() const { return faults_ != nullptr; }

    /** The Promoter reports a retry of a transiently failed page. */
    void noteRetry() { ++stats_.retries; }

    /** The Promoter reports a page dropped from the retry pipeline. */
    void noteDropped() { ++stats_.dropped; }

    /**
     * Register outcome counters as `os.migration.*` telemetry.  The
     * exchange / per-tier counters only exist under fault injection or
     * with > 2 tiers, so a default two-tier fault-free run's telemetry
     * stays byte-identical to the pre-topology simulator.
     */
    void registerStats(StatRegistry &reg) const;

  private:
    /** Move vpn to dst_node; the caller guarantees a frame is available.
     *  Handles per-tier LRU bookkeeping for both endpoints. */
    Tick moveTo(Vpn vpn, NodeId dst_node, Tick now);

    /** Account + trace one injected transient failure. */
    MigrateResult transientFail(Vpn vpn, Tick now, MigrateOutcome outcome);

    /** Exchange vpn with the top tier's coldest page.  nullopt when no
     *  usable victim exists (caller falls back to TransientNoFrame).
     *  The optional wrapper hides MigrateResult's own [[nodiscard]],
     *  so the declaration restores it. */
    [[nodiscard]] std::optional<MigrateResult>
    exchangeWithVictim(Vpn vpn, Tick now);

    /** Fastest tier below the top with a free frame that still beats
     *  `src`, excluding the spill tier (opportunistic placement). */
    std::optional<NodeId> bestFitBelowTop(NodeId src) const;

    const TierTopology &topo_;
    PageTable &pt_;
    FrameAllocator &alloc_;
    MemorySystem &mem_;
    SetAssocCache &llc_;
    Tlb &tlb_;
    KernelLedger &ledger_;
    TierLrus &lrus_;
    MigrationCosts costs_;
    MigrationStats stats_;
    //! Pages arrived per tier via migration (registered with > 2 tiers).
    std::vector<std::uint64_t> moved_in_;
    //! Pages departed per tier via migration.
    std::vector<std::uint64_t> moved_out_;
    FaultInjector *faults_ = nullptr; //!< Not owned; may be null.
    TenantTable *tenants_ = nullptr;  //!< Not owned; may be null.
    bool exchange_enabled_ = true;
    //! Transactional mode (off by default at the engine level; the
    //! system arms it from SystemConfig::txn_migrate).
    std::unique_ptr<TransactionalMigrator> txn_;
    StatHistogram batch_hist_{{1, 2, 4, 8, 16, 32, 64, 128}};
};

} // namespace m5
