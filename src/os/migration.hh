/**
 * @file
 * Page migration engine — the model of migrate_pages() plus demotion.
 *
 * Promoting a page when DDR is full first demotes an MGLRU victim (§7,
 * "whenever the page-migration solution migrates a certain number of pages
 * to DDR DRAM, it demotes the same number of pages to CXL DRAM").
 *
 * Each migrated page costs:
 *  - software overhead (rmap walk, PTE update, TLB shootdown, LRU upkeep),
 *  - an explicit 64-word copy routed through the memory system, so the CXL
 *    controller's counters observe migration reads exactly like the real
 *    PAC does, and the copy shows up in Monitor's bandwidth statistics.
 * Together ≈ 54us per 4KB page (§7.2).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "cache/cache.hh"
#include "cache/tlb.hh"
#include "common/types.hh"
#include "mem/memsys.hh"
#include "os/costs.hh"
#include "os/frame_alloc.hh"
#include "os/kernel_ledger.hh"
#include "os/mglru.hh"
#include "os/page_table.hh"
#include "sim/fault/fault.hh"
#include "telemetry/registry.hh"

namespace m5 {

/** Migration cost model. */
struct MigrationCosts
{
    //! Software overhead per migrated page (rmap walk, PTE update, TLB
    //! shootdown IPIs, LRU bookkeeping).  The paper's ~54us/page (§7.2) is
    //! dominated by this term; scaled runs shrink it proportionally so the
    //! fill-time : runtime ratio matches the full-scale system.
    Cycles software_per_page = cost::kMigratePageSoftware;
    //! Streaming copy bandwidth (the kernel's memcpy pipelines the 64-word
    //! copy; it is not 64 serialized round trips).
    double copy_bytes_per_s = 12.0e9;
    //! Fixed per-page copy latency floor (one round trip each way).
    Tick copy_latency_floor = 400;
};

/** Migration outcome counters. */
struct MigrationStats
{
    std::uint64_t promoted = 0;
    std::uint64_t demoted = 0;
    std::uint64_t rejected_pinned = 0;
    std::uint64_t rejected_not_cxl = 0;
    std::uint64_t failed_capacity = 0;
    Tick busy_time = 0; //!< Wall time consumed migrating.
    //! Transient migrate_pages() failures (fault injection; the page
    //! stayed mapped at its source and may be retried).
    std::uint64_t transient_fail = 0;
    //! Retries issued against previously transient pages (Promoter).
    std::uint64_t retries = 0;
    //! Pages dropped from the retry pipeline (max attempts / queue full).
    std::uint64_t dropped = 0;
};

/** Why one promote() call ended the way it did. */
enum class MigrateOutcome : std::uint8_t
{
    Done,             //!< Page now resident on DDR.
    TransientBusy,    //!< migrate_pages() hit EBUSY / a refcount race;
                      //!< the page stays at its source — retryable.
    TransientNoFrame, //!< DDR frame allocation failed under pressure;
                      //!< retryable once pressure clears.
    RejectedPinned,   //!< Permanent: page is DMA-pinned.
    RejectedNotCxl,   //!< Permanent: page not CXL-resident (or unmapped).
    FailedCapacity,   //!< DDR full and no demotion victim available.
};

/**
 * Per-page result of a promotion attempt (Nomad-style semantics: on any
 * failure the page is still mapped at its source — nothing is lost,
 * only time).  [[nodiscard]] because ignoring a failed migration is how
 * real pipelines leak hot pages onto the slow tier; m5lint's
 * no-unchecked-migrate-result rule backs this up across call sites.
 */
struct [[nodiscard]] MigrateResult
{
    MigrateOutcome outcome = MigrateOutcome::Done;
    Tick busy = 0; //!< Time consumed (nonzero even on some failures).

    /** Page landed on DDR. */
    bool ok() const { return outcome == MigrateOutcome::Done; }

    /** Failure that a later retry may clear. */
    bool
    transient() const
    {
        return outcome == MigrateOutcome::TransientBusy ||
               outcome == MigrateOutcome::TransientNoFrame;
    }

    /** Stable reason string ("ok", "busy", "no_frame", "pinned",
     *  "not_cxl", "failed_capacity") — shared by traces and reports. */
    const char *reason() const;
};

/** Aggregate result of promoteBatch (partial batches commit). */
struct [[nodiscard]] BatchResult
{
    Tick busy = 0;
    std::uint64_t promoted = 0;  //!< Pages that landed on DDR.
    std::uint64_t transient = 0; //!< Retryable failures.
    std::uint64_t rejected = 0;  //!< Permanent rejects + capacity.
};

/** Moves pages between tiers with full cost accounting. */
class MigrationEngine
{
  public:
    MigrationEngine(PageTable &pt, FrameAllocator &alloc, MemorySystem &mem,
                    SetAssocCache &llc, Tlb &tlb, KernelLedger &ledger,
                    MgLru &mglru, const MigrationCosts &costs = {});

    /**
     * Promote one page to DDR, demoting an MGLRU victim if DDR is full.
     *
     * @param vpn Page to promote.
     * @param now Current simulated time.
     * @return Outcome + time consumed; on any failure the page is still
     *         mapped at its source.
     */
    MigrateResult promote(Vpn vpn, Tick now);

    /**
     * Promote a batch.  Partial batches commit: each page succeeds or
     * fails independently, and a transient failure mid-batch does not
     * unwind earlier promotions.
     */
    BatchResult promoteBatch(const std::vector<Vpn> &vpns, Tick now);

    /** Demote one specific page to CXL. @return Time consumed. */
    Tick demote(Vpn vpn, Tick now);

    /** Statistics. */
    const MigrationStats &stats() const { return stats_; }

    /** True if a page may legally be promoted right now. */
    bool canPromote(Vpn vpn) const;

    /** Free frames remaining on the DDR node (daemon pacing input). */
    std::size_t ddrFreeFrames() const;

    /** Record one promotion batch of `pages` pages in the batch-size
     *  histogram.  Policies that loop promote() themselves (ANB, DAMON,
     *  PEBS, Promoter) call this once per wake; promoteBatch does it
     *  internally.  Empty batches are not recorded. */
    void
    noteBatch(std::size_t pages)
    {
        if (pages)
            batch_hist_.add(pages);
    }

    /** Promotion-batch size distribution (pages per batch). */
    const StatHistogram &batchPagesHistogram() const { return batch_hist_; }

    /**
     * Attach a fault injector (nullptr detaches).  Must precede
     * registerStats: the retry/transient/dropped counters are only
     * published when faults are in play, so fault-free telemetry stays
     * byte-identical (docs/FAULTS.md).
     */
    void attachFaults(FaultInjector *faults) { faults_ = faults; }

    /** True when a fault injector is attached. */
    bool faultsActive() const { return faults_ != nullptr; }

    /** The Promoter reports a retry of a transiently failed page. */
    void noteRetry() { ++stats_.retries; }

    /** The Promoter reports a page dropped from the retry pipeline. */
    void noteDropped() { ++stats_.dropped; }

    /** Register outcome counters as `os.migration.*` telemetry. */
    void registerStats(StatRegistry &reg) const;

  private:
    /** Move vpn to dst_node; the caller guarantees a frame is available. */
    Tick moveTo(Vpn vpn, NodeId dst_node, Tick now);

    /** Account + trace one injected transient failure. */
    MigrateResult transientFail(Vpn vpn, Tick now, MigrateOutcome outcome);

    PageTable &pt_;
    FrameAllocator &alloc_;
    MemorySystem &mem_;
    SetAssocCache &llc_;
    Tlb &tlb_;
    KernelLedger &ledger_;
    MgLru &mglru_;
    MigrationCosts costs_;
    MigrationStats stats_;
    FaultInjector *faults_ = nullptr; //!< Not owned; may be null.
    StatHistogram batch_hist_{{1, 2, 4, 8, 16, 32, 64, 128}};
};

} // namespace m5
