/**
 * @file
 * Page migration engine — the model of migrate_pages() plus demotion.
 *
 * Promoting a page when DDR is full first demotes an MGLRU victim (§7,
 * "whenever the page-migration solution migrates a certain number of pages
 * to DDR DRAM, it demotes the same number of pages to CXL DRAM").
 *
 * Each migrated page costs:
 *  - software overhead (rmap walk, PTE update, TLB shootdown, LRU upkeep),
 *  - an explicit 64-word copy routed through the memory system, so the CXL
 *    controller's counters observe migration reads exactly like the real
 *    PAC does, and the copy shows up in Monitor's bandwidth statistics.
 * Together ≈ 54us per 4KB page (§7.2).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "cache/cache.hh"
#include "cache/tlb.hh"
#include "common/types.hh"
#include "mem/memsys.hh"
#include "os/costs.hh"
#include "os/frame_alloc.hh"
#include "os/kernel_ledger.hh"
#include "os/mglru.hh"
#include "os/page_table.hh"
#include "telemetry/registry.hh"

namespace m5 {

/** Migration cost model. */
struct MigrationCosts
{
    //! Software overhead per migrated page (rmap walk, PTE update, TLB
    //! shootdown IPIs, LRU bookkeeping).  The paper's ~54us/page (§7.2) is
    //! dominated by this term; scaled runs shrink it proportionally so the
    //! fill-time : runtime ratio matches the full-scale system.
    Cycles software_per_page = cost::kMigratePageSoftware;
    //! Streaming copy bandwidth (the kernel's memcpy pipelines the 64-word
    //! copy; it is not 64 serialized round trips).
    double copy_bytes_per_s = 12.0e9;
    //! Fixed per-page copy latency floor (one round trip each way).
    Tick copy_latency_floor = 400;
};

/** Migration outcome counters. */
struct MigrationStats
{
    std::uint64_t promoted = 0;
    std::uint64_t demoted = 0;
    std::uint64_t rejected_pinned = 0;
    std::uint64_t rejected_not_cxl = 0;
    std::uint64_t failed_capacity = 0;
    Tick busy_time = 0; //!< Wall time consumed migrating.
};

/** Moves pages between tiers with full cost accounting. */
class MigrationEngine
{
  public:
    MigrationEngine(PageTable &pt, FrameAllocator &alloc, MemorySystem &mem,
                    SetAssocCache &llc, Tlb &tlb, KernelLedger &ledger,
                    MgLru &mglru, const MigrationCosts &costs = {});

    /**
     * Promote one page to DDR, demoting an MGLRU victim if DDR is full.
     *
     * @param vpn Page to promote.
     * @param now Current simulated time.
     * @return Time consumed (0 if the page was rejected).
     */
    Tick promote(Vpn vpn, Tick now);

    /**
     * Promote a batch; stops early only on allocator exhaustion that
     * demotion cannot fix.
     * @return Total time consumed.
     */
    Tick promoteBatch(const std::vector<Vpn> &vpns, Tick now);

    /** Demote one specific page to CXL. @return Time consumed. */
    Tick demote(Vpn vpn, Tick now);

    /** Statistics. */
    const MigrationStats &stats() const { return stats_; }

    /** True if a page may legally be promoted right now. */
    bool canPromote(Vpn vpn) const;

    /** Free frames remaining on the DDR node (daemon pacing input). */
    std::size_t ddrFreeFrames() const;

    /** Record one promotion batch of `pages` pages in the batch-size
     *  histogram.  Policies that loop promote() themselves (ANB, DAMON,
     *  PEBS, Promoter) call this once per wake; promoteBatch does it
     *  internally.  Empty batches are not recorded. */
    void
    noteBatch(std::size_t pages)
    {
        if (pages)
            batch_hist_.add(pages);
    }

    /** Promotion-batch size distribution (pages per batch). */
    const StatHistogram &batchPagesHistogram() const { return batch_hist_; }

    /** Register outcome counters as `os.migration.*` telemetry. */
    void registerStats(StatRegistry &reg) const;

  private:
    /** Move vpn to dst_node; the caller guarantees a frame is available. */
    Tick moveTo(Vpn vpn, NodeId dst_node, Tick now);

    PageTable &pt_;
    FrameAllocator &alloc_;
    MemorySystem &mem_;
    SetAssocCache &llc_;
    Tlb &tlb_;
    KernelLedger &ledger_;
    MgLru &mglru_;
    MigrationCosts costs_;
    MigrationStats stats_;
    StatHistogram batch_hist_{{1, 2, 4, 8, 16, 32, 64, 128}};
};

} // namespace m5
