#include "hwmodel/area_power.hh"

#include <cmath>

#include "common/logging.hh"

namespace m5 {
namespace {

// Fitted to Table 4 (7nm, H = 4, K = 5, 400MHz):
//   Space-Saving (CAM):  area = 60.2 * N^1.049,  power = 0.0146 * N
//   CM-Sketch (SRAM):    area = base + 1.304*N + 22*sqrt(N)
//                        power = pbase + 5.7e-4*N + 0.02*sqrt(N)
// where base/pbase include the K-entry sorted CAM at CAM per-entry cost.

constexpr double kCamAreaCoeff = 60.2;
constexpr double kCamAreaExp = 1.049;
constexpr double kCamPowerPerEntry = 0.0146;

constexpr double kSramFixedArea = 1313.0;
constexpr double kSramAreaPerEntry = 1.304;
constexpr double kSramAreaBankTerm = 22.0;
constexpr double kSramFixedPower = 1.757;
constexpr double kSramPowerPerEntry = 5.7e-4;
constexpr double kSramPowerBankTerm = 0.02;

constexpr double kCamAreaPerEntry = 73.0; // For the K-entry result CAM.

} // namespace

std::uint64_t
fpgaMaxEntries(TrackerKind kind)
{
    // FPGA synthesis at 400MHz (§7.1): parallel CAM match limits
    // Space-Saving to 50 entries; banked block-RAM CM-Sketch reaches 128K.
    switch (kind) {
      case TrackerKind::SpaceSavingTopK:
        return 50;
      case TrackerKind::CmSketchTopK:
        return 128 * 1024;
    }
    m5_panic("unknown TrackerKind");
}

std::uint64_t
asicMaxEntries(TrackerKind kind)
{
    // 7nm logic at 400MHz (Table 4): Space-Saving tops out at N = 2K —
    // "almost an order of magnitude fewer entries than the FPGA-based
    // CM-Sketch"; SRAM-based CM-Sketch scales beyond the table.
    switch (kind) {
      case TrackerKind::SpaceSavingTopK:
        return 2 * 1024;
      case TrackerKind::CmSketchTopK:
        return 1024 * 1024;
    }
    m5_panic("unknown TrackerKind");
}

SynthesisEstimate
estimateTracker(TrackerKind kind, std::uint64_t entries, std::size_t k,
                unsigned counter_bits)
{
    m5_assert(entries > 0, "tracker needs entries");
    SynthesisEstimate est;
    const double n = static_cast<double>(entries);
    const double bit_scale = static_cast<double>(counter_bits) / 16.0;

    switch (kind) {
      case TrackerKind::SpaceSavingTopK:
        // The N-entry stream-summary CAM *is* the top-K store; K does not
        // add hardware.
        est.area_um2 = kCamAreaCoeff * std::pow(n, kCamAreaExp) * bit_scale;
        est.power_mw = kCamPowerPerEntry * n * bit_scale;
        break;
      case TrackerKind::CmSketchTopK: {
        const double cam_k = static_cast<double>(k);
        est.area_um2 = kSramFixedArea + kCamAreaPerEntry * cam_k +
                       kSramAreaPerEntry * n * bit_scale +
                       kSramAreaBankTerm * std::sqrt(n);
        est.power_mw = kSramFixedPower + kCamPowerPerEntry * cam_k +
                       kSramPowerPerEntry * n * bit_scale +
                       kSramPowerBankTerm * std::sqrt(n);
        break;
      }
    }
    est.fpga_feasible = entries <= fpgaMaxEntries(kind);
    est.asic_feasible = entries <= asicMaxEntries(kind);
    return est;
}

} // namespace m5
