/**
 * @file
 * Analytical area / power model of the top-K trackers (Table 4, §7.1).
 *
 * The Space-Saving tracker is an N-entry CAM searched in parallel on every
 * access: area and power grow superlinearly in N (match lines, priority
 * encoding), which caps the synthesizable N at 50 entries on the Agilex-7
 * FPGA and ~2K in 7nm ASIC under the 400MHz timing constraint (one access
 * per tCCD = 2.5ns).  The CM-Sketch tracker stores counts in banked SRAM
 * with a constant K-entry CAM, so it scales to 128K entries.
 *
 * Constants are fitted to the paper's Table 4 (ASAP7-class 7nm numbers).
 */

#pragma once

#include <cstdint>

#include "sketch/topk_tracker.hh"

namespace m5 {

/** Synthesis estimate for one tracker instance. */
struct SynthesisEstimate
{
    double area_um2 = 0.0;
    double power_mw = 0.0;
    bool fpga_feasible = false;  //!< Meets 400MHz on Agilex-7.
    bool asic_feasible = false;  //!< Meets 400MHz in 7nm logic.
};

/** Maximum N meeting 400MHz on the FPGA per algorithm. */
std::uint64_t fpgaMaxEntries(TrackerKind kind);

/** Maximum N meeting 400MHz in the 7nm ASIC flow per algorithm. */
std::uint64_t asicMaxEntries(TrackerKind kind);

/**
 * Estimate size and power of a top-K tracker.
 *
 * @param kind Algorithm.
 * @param entries N (CAM entries or H*W sketch counters).
 * @param k Top-K CAM size (Table 4 uses K = 5).
 * @param counter_bits Counter width (Table 4 uses 16).
 */
SynthesisEstimate estimateTracker(TrackerKind kind, std::uint64_t entries,
                                  std::size_t k = 5,
                                  unsigned counter_bits = 16);

} // namespace m5
