/**
 * @file
 * SPECrate CPU 2017 workload models: mcf_r, cactuBSSN_r, fotonik3d_r,
 * roms_r — the four most memory-intensive SPECrate benchmarks (§6).
 *
 * Calibration targets:
 *  - Figure 4: all four are densely accessed (P(>=48 words) = 87-92%),
 *    roms_r being the partial exception.
 *  - Figure 10: mcf/cactu/fotonik have comparatively flat per-page
 *    access-count CDFs (why ANB/DAMON score above 0.4 on them in
 *    Figure 3), while roms_r is highly skewed (p90/p95/p99 ~ 2x/8x/17x
 *    of p50) with timestep phase drift — the workload where M5's precise
 *    tracking pays off most (Figure 9: +96% over ANB).
 */

#include "workloads/registry.hh"

#include "common/logging.hh"

namespace m5 {

SyntheticParams
specParams(const std::string &name)
{
    SyntheticParams p;
    p.name = name;
    p.read_fraction = 0.72;
    p.hot_cluster_pages = 128;

    const std::vector<SparsityClass> dense = {
        {0.90, 49, 64, 0.15, true},
        {0.06, 33, 48, 0.15, true},
        {0.04, 8, 32, 0.25, false},
    };

    if (name == "mcf_r") {
        p.page_zipf_alpha = 1.10;
        p.head_alpha = 0.30;
        p.plateau_fraction = 0.06;
        p.uniform_fraction = 0.08;
        p.sparsity = dense;
    } else if (name == "cactuBSSN_r") {
        p.page_zipf_alpha = 0.95;
        p.head_alpha = 0.25;
        p.plateau_fraction = 0.10;
        p.uniform_fraction = 0.10;
        p.sparsity = dense;
    } else if (name == "fotonik3d_r") {
        p.page_zipf_alpha = 0.90;
        p.head_alpha = 0.22;
        p.plateau_fraction = 0.12;
        p.uniform_fraction = 0.12;
        p.sparsity = dense;
        p.read_fraction = 0.68;
    } else if (name == "roms_r") {
        p.page_zipf_alpha = 1.40;
        p.head_alpha = 0.70;
        p.plateau_fraction = 0.05;
        p.uniform_fraction = 0.03;
        p.sparsity = {
            {0.55, 49, 64, 0.15, true},
            {0.20, 33, 48, 0.20, true},
            {0.15, 17, 32, 0.30, false},
            {0.10, 4, 16, 0.40, false},
        };
        p.phase_length = 4'000'000;
        p.phase_shift_fraction = 0.01;
    } else {
        m5_fatal("unknown SPEC benchmark '%s'", name.c_str());
    }
    return p;
}

} // namespace m5
