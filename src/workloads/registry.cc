#include "workloads/registry.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace m5 {
namespace {

/** Table 3 of the paper. */
const std::vector<BenchmarkInfo> kBenchmarks = {
    {"liblinear", 6.0, 20, 10},
    {"bc", 6.9, 20, 10},
    {"bfs", 6.9, 20, 10},
    {"cc", 6.9, 20, 10},
    {"pr", 6.9, 20, 10},
    {"sssp", 6.9, 20, 10},
    {"tc", 5.0, 20, 10},
    {"cactuBSSN_r", 6.3, 8, 4},
    {"fotonik3d_r", 6.8, 8, 4},
    {"mcf_r", 4.9, 8, 4},
    {"roms_r", 6.7, 8, 4},
    {"redis", 6.0, 1, 1},
    // Figure 4 extras (not in Table 3; footprints assumed Redis-like).
    {"memcached", 6.0, 1, 1},
    {"cachelib", 6.0, 1, 1},
};

const std::vector<std::string> kEvaluationOrder = {
    "liblinear", "bc", "bfs", "cc", "pr", "sssp", "tc",
    "cactuBSSN_r", "fotonik3d_r", "mcf_r", "roms_r", "redis",
};

const std::vector<std::string> kSparsityOrder = {
    "liblinear", "bc", "bfs", "cc", "pr", "sssp", "tc",
    "cactuBSSN_r", "fotonik3d_r", "mcf_r", "roms_r",
    "redis", "memcached", "cachelib",
};

bool
isSpec(const std::string &name)
{
    return name == "mcf_r" || name == "cactuBSSN_r" ||
           name == "fotonik3d_r" || name == "roms_r";
}

bool
isGap(const std::string &name)
{
    return name == "bc" || name == "bfs" || name == "cc" ||
           name == "pr" || name == "sssp" || name == "tc";
}

} // namespace

const std::vector<std::string> &
benchmarkNames()
{
    return kEvaluationOrder;
}

const std::vector<std::string> &
sparsityBenchmarkNames()
{
    return kSparsityOrder;
}

const BenchmarkInfo &
benchmarkInfo(const std::string &name)
{
    for (const auto &b : kBenchmarks) {
        if (b.name == name)
            return b;
    }
    m5_fatal("unknown benchmark '%s'", name.c_str());
}

SyntheticParams
benchmarkParams(const std::string &name, double scale)
{
    m5_assert(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    SyntheticParams p;
    if (isSpec(name))
        p = specParams(name);
    else if (isGap(name))
        p = gapParams(name);
    else
        p = appParams(name);

    const BenchmarkInfo &info = benchmarkInfo(name);
    const double pages_full = info.footprint_gb * 1024.0 * 1024.0 * 1024.0 /
                              static_cast<double>(kPageBytes);
    p.footprint_pages =
        std::max<std::size_t>(1024,
                              static_cast<std::size_t>(pages_full * scale));
    // Phase lengths were expressed at full scale; shrink proportionally so
    // drift happens at the same *per-page* rate.
    if (p.phase_length) {
        p.phase_length = std::max<std::uint64_t>(
            50'000,
            static_cast<std::uint64_t>(
                static_cast<double>(p.phase_length) * scale * 4.0));
    }
    return p;
}

std::unique_ptr<SyntheticWorkload>
makeWorkload(const std::string &name, double scale, std::uint64_t seed)
{
    return std::make_unique<SyntheticWorkload>(benchmarkParams(name, scale),
                                               seed);
}

std::unique_ptr<Workload>
makeMultiWorkload(const std::string &name, std::size_t instances,
                  double scale, std::uint64_t seed)
{
    m5_assert(instances >= 1, "need at least one instance");
    std::vector<std::unique_ptr<SyntheticWorkload>> ws;
    for (std::size_t i = 0; i < instances; ++i) {
        SyntheticParams p = benchmarkParams(name, scale);
        p.footprint_pages = std::max<std::size_t>(
            256, p.footprint_pages / instances);
        ws.push_back(std::make_unique<SyntheticWorkload>(
            p, seed + 0x9e37ULL * (i + 1)));
    }
    if (instances == 1)
        return std::move(ws[0]);
    return std::make_unique<MultiWorkload>(std::move(ws));
}

std::unique_ptr<Workload>
makeMixedWorkload(const std::vector<std::string> &names, double scale,
                  std::uint64_t seed)
{
    m5_assert(!names.empty(), "mixed workload needs at least one tenant");
    std::vector<std::unique_ptr<SyntheticWorkload>> ws;
    for (std::size_t i = 0; i < names.size(); ++i) {
        ws.push_back(std::make_unique<SyntheticWorkload>(
            benchmarkParams(names[i], scale),
            seed + 0x51edULL * (i + 1)));
    }
    if (names.size() == 1)
        return std::move(ws[0]);
    return std::make_unique<MultiWorkload>(std::move(ws));
}

std::uint64_t
benchmarkLlcBytes(const std::string &name, double scale)
{
    const BenchmarkInfo &info = benchmarkInfo(name);
    // 60MB LLC, 15 CAT ways: the benchmark receives cat_ways of them
    // (§6), then the whole machine is scaled down.
    const double full = 60.0 * 1024.0 * 1024.0 *
                        static_cast<double>(info.cat_ways) / 15.0;
    return std::max<std::uint64_t>(256 * 1024,
        static_cast<std::uint64_t>(full * scale));
}

} // namespace m5
