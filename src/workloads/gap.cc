/**
 * @file
 * GAP benchmark suite models: BC, BFS, CC, PR, SSSP, TC on the Twitter /
 * Google graphs (§6, Table 3).
 *
 * Calibration targets:
 *  - Figure 4: PR and SSSP are dense (>=75% of words touched in 98% / 89%
 *    of pages); BC/BFS/CC/TC show notable sparsity (P(<=16 words) = 4%,
 *    17%, 20%, 12%).
 *  - Figure 10 / §7.2: PR and TC have flat page-hotness distributions
 *    (migrating precisely buys nothing: Figure 9 shows M5 ~ ANB ~ DAMON
 *    on PR; TC's bottom-p50 pages take ~288 extra accesses, below the
 *    ~318 needed to amortize a migration); traversal codes (BFS, SSSP,
 *    BC) drift phase-by-phase with the frontier.
 */

#include "workloads/registry.hh"

#include "common/logging.hh"

namespace m5 {

SyntheticParams
gapParams(const std::string &name)
{
    SyntheticParams p;
    p.name = name;
    p.read_fraction = 0.82;
    p.hot_cluster_pages = 32;

    auto mixed = [](double sparse_frac) {
        // Graph codes: CSR offsets/frontiers are dense, property arrays
        // over high-degree tails are sparse.
        const double rest = 1.0 - sparse_frac;
        return std::vector<SparsityClass>{
            {sparse_frac, 4, 16, 0.45, false},
            {rest * 0.28, 17, 32, 0.35, false},
            {rest * 0.32, 33, 48, 0.25, true},
            {rest * 0.40, 49, 64, 0.15, true},
        };
    };

    if (name == "bc") {
        p.page_zipf_alpha = 1.10;
        p.head_alpha = 0.60;
        p.plateau_fraction = 0.06;
        p.uniform_fraction = 0.08;
        p.sparsity = mixed(0.04);
        p.phase_length = 1'000'000;
        p.phase_shift_fraction = 0.05;
    } else if (name == "bfs") {
        p.page_zipf_alpha = 1.00;
        p.head_alpha = 0.55;
        p.plateau_fraction = 0.07;
        p.uniform_fraction = 0.08;
        p.sparsity = mixed(0.17);
        p.phase_length = 500'000;
        p.phase_shift_fraction = 0.10;
    } else if (name == "cc") {
        p.page_zipf_alpha = 1.00;
        p.head_alpha = 0.55;
        p.plateau_fraction = 0.07;
        p.uniform_fraction = 0.10;
        p.sparsity = mixed(0.20);
        p.phase_length = 1'000'000;
        p.phase_shift_fraction = 0.05;
    } else if (name == "pr") {
        // Whole-graph sweeps every iteration: flat and stable.
        p.page_zipf_alpha = 0.60;
        p.head_alpha = 0.40;
        p.plateau_fraction = 0.20;
        p.uniform_fraction = 0.18;
        p.sparsity = {
            {0.98, 49, 64, 0.10, true},
            {0.02, 16, 48, 0.30, false},
        };
    } else if (name == "sssp") {
        p.page_zipf_alpha = 1.10;
        p.head_alpha = 0.60;
        p.plateau_fraction = 0.06;
        p.uniform_fraction = 0.08;
        p.sparsity = {
            {0.89, 49, 64, 0.15, true},
            {0.07, 33, 48, 0.25, true},
            {0.04, 8, 32, 0.40, false},
        };
        p.phase_length = 800'000;
        p.phase_shift_fraction = 0.08;
    } else if (name == "tc") {
        p.page_zipf_alpha = 0.50;
        p.head_alpha = 0.35;
        p.plateau_fraction = 0.25;
        p.uniform_fraction = 0.22;
        p.sparsity = mixed(0.12);
    } else {
        m5_fatal("unknown GAP benchmark '%s'", name.c_str());
    }
    return p;
}

} // namespace m5
