#include "workloads/workload.hh"

#include <algorithm>
#include <cmath>
#include <array>
#include <numeric>

#include "common/logging.hh"

namespace m5 {

namespace {

/** Two-slope Zipf weights: w_r = (r+1)^-head_alpha for r < knee, then
 *  w_knee * ((r+1)/knee)^-tail_alpha, continuous at the knee. */
std::vector<double>
plateauZipfWeights(std::size_t n, double tail_alpha, double head_alpha,
                   double plateau_fraction)
{
    const double knee = std::max(1.0,
        plateau_fraction * static_cast<double>(n));
    const double w_knee = std::pow(knee, -head_alpha);
    std::vector<double> w(n);
    for (std::size_t r = 0; r < n; ++r) {
        const double rank = static_cast<double>(r + 1);
        w[r] = rank < knee
            ? std::pow(rank, -head_alpha)
            : w_knee * std::pow(rank / knee, -tail_alpha);
    }
    return w;
}

} // namespace

SyntheticWorkload::SyntheticWorkload(const SyntheticParams &params,
                                     std::uint64_t seed)
    : params_(params), rng_(seed),
      page_pop_(plateauZipfWeights(params.footprint_pages,
                                   params.page_zipf_alpha,
                                   params.head_alpha,
                                   params.plateau_fraction))
{
    m5_assert(params.footprint_pages > 0, "workload needs pages");
    m5_assert(!params.sparsity.empty(), "workload needs sparsity classes");
    double frac = 0.0;
    for (const auto &c : params.sparsity) {
        m5_assert(c.words_min >= 1 && c.words_max <= kWordsPerPage &&
                  c.words_min <= c.words_max,
                  "bad sparsity class in %s", params.name.c_str());
        frac += c.page_fraction;
    }
    m5_assert(frac > 0.99 && frac < 1.01,
              "%s sparsity fractions sum to %f", params.name.c_str(), frac);

    // Popularity permutation: rank r maps to page perm_[r].  Blocks of
    // hot_cluster_pages consecutive pages are kept together and the block
    // order is shuffled, so hotness is spatially clustered in VA space at
    // block granularity while the per-page Zipf marginals are unchanged.
    const std::size_t n = params.footprint_pages;
    const std::size_t cluster =
        std::max<std::size_t>(1, params.hot_cluster_pages);
    const std::size_t nblocks = (n + cluster - 1) / cluster;
    std::vector<std::uint32_t> block_order(nblocks);
    std::iota(block_order.begin(), block_order.end(), 0);
    std::shuffle(block_order.begin(), block_order.end(), rng_.engine());
    perm_.reserve(n);
    for (std::uint32_t b : block_order) {
        const std::size_t begin = static_cast<std::size_t>(b) * cluster;
        const std::size_t end = std::min(begin + cluster, n);
        for (std::size_t p = begin; p < end; ++p)
            perm_.push_back(static_cast<std::uint32_t>(p));
    }

    for (const auto &c : params.sparsity)
        word_zipf_.emplace_back(kWordsPerPage, c.word_zipf_alpha);

    sweep_cursor_.assign(n, 0);
    assignClasses();
}

void
SyntheticWorkload::assignClasses()
{
    const std::size_t n = params_.footprint_pages;
    page_class_.resize(n);
    word_begin_.resize(n + 1);

    std::vector<double> weights;
    for (const auto &c : params_.sparsity)
        weights.push_back(c.page_fraction);
    AliasSampler class_sampler(weights);

    // First pass: pick a class and an active-word count per page.
    std::vector<std::uint8_t> nwords(n);
    std::size_t pool_size = 0;
    for (std::size_t p = 0; p < n; ++p) {
        const auto cls =
            static_cast<std::uint8_t>(class_sampler.sample(rng_));
        page_class_[p] = cls;
        const auto &c = params_.sparsity[cls];
        nwords[p] = static_cast<std::uint8_t>(
            rng_.between(c.words_min, c.words_max));
        pool_size += nwords[p];
    }

    // Second pass: fill each page's active-word list with a random subset
    // of the 64 word slots (partial Fisher-Yates).
    word_pool_.resize(pool_size);
    std::uint32_t cursor = 0;
    std::array<std::uint8_t, kWordsPerPage> slots;
    for (std::size_t p = 0; p < n; ++p) {
        word_begin_[p] = cursor;
        for (unsigned i = 0; i < kWordsPerPage; ++i)
            slots[i] = static_cast<std::uint8_t>(i);
        const unsigned take = nwords[p];
        for (unsigned i = 0; i < take; ++i) {
            const auto j =
                static_cast<unsigned>(rng_.between(i, kWordsPerPage - 1));
            std::swap(slots[i], slots[j]);
            word_pool_[cursor++] = slots[i];
        }
    }
    word_begin_[n] = cursor;
}

unsigned
SyntheticWorkload::activeWords(Vpn vpn) const
{
    m5_assert(vpn < params_.footprint_pages, "vpn out of range");
    return word_begin_[vpn + 1] - word_begin_[vpn];
}

AccessEvent
SyntheticWorkload::next()
{
    // Phase drift: rotate the popularity permutation.
    if (params_.phase_length && ++accesses_ % params_.phase_length == 0) {
        phase_offset_ += static_cast<std::size_t>(
            params_.phase_shift_fraction *
            static_cast<double>(params_.footprint_pages));
    }

    // Page choice: Zipf-popular or uniform background.
    std::size_t page;
    if (params_.uniform_fraction > 0.0 &&
        rng_.chance(params_.uniform_fraction)) {
        page = rng_.below(params_.footprint_pages);
    } else {
        const std::size_t rank =
            (page_pop_.sample(rng_) + phase_offset_) %
            params_.footprint_pages;
        page = perm_[rank];
    }

    // Word choice: sweep dense pages with a cursor; Zipf-sample sparse
    // pages so genuinely hot words exist for HWT.
    const std::uint32_t begin = word_begin_[page];
    const std::uint32_t count = word_begin_[page + 1] - begin;
    std::size_t rank;
    if (params_.sparsity[page_class_[page]].sweep) {
        rank = sweep_cursor_[page]++ % count;
    } else {
        rank = word_zipf_[page_class_[page]].sample(rng_) % count;
    }
    const unsigned word = word_pool_[begin + rank];

    const VAddr va = (static_cast<VAddr>(page) << kPageShift) |
                     (static_cast<VAddr>(word) << kWordShift);
    return {va, !rng_.chance(params_.read_fraction)};
}

MultiWorkload::MultiWorkload(
    std::vector<std::unique_ptr<SyntheticWorkload>> instances)
    : instances_(std::move(instances))
{
    m5_assert(!instances_.empty(), "MultiWorkload needs instances");
    bool homogeneous = true;
    for (const auto &w : instances_)
        homogeneous &= w->name() == instances_[0]->name();
    if (homogeneous) {
        name_ = instances_[0]->name() + "x" +
                std::to_string(instances_.size());
    } else {
        name_ = "mix(";
        for (std::size_t i = 0; i < instances_.size(); ++i) {
            if (i)
                name_ += "+";
            name_ += instances_[i]->name();
        }
        name_ += ")";
    }
    for (const auto &w : instances_) {
        base_page_.push_back(total_pages_);
        total_pages_ += w->footprintPages();
    }
}

AccessEvent
MultiWorkload::next()
{
    const std::size_t i = next_instance_;
    next_instance_ = (next_instance_ + 1) % instances_.size();
    AccessEvent ev = instances_[i]->next();
    ev.va += static_cast<VAddr>(base_page_[i]) << kPageShift;
    return ev;
}

unsigned
MultiWorkload::accessesPerRequest() const
{
    return instances_[0]->accessesPerRequest();
}

} // namespace m5
