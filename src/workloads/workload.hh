/**
 * @file
 * Synthetic workload models.
 *
 * Real SPEC/GAP/Redis binaries are replaced by parameterized access-stream
 * generators (see DESIGN.md's substitution table).  Page-migration quality
 * depends on the *statistics* of the stream, which the model controls
 * directly:
 *
 *  - page popularity: Zipf(alpha) over a random page permutation, plus a
 *    uniform background component, calibrated to Figure 10's per-page
 *    access-count CDFs;
 *  - word sparsity: each page belongs to a sparsity class that fixes its
 *    set of active 64B words, calibrated to Figure 4;
 *  - word popularity: Zipf within the active words, so sparse pages carry
 *    genuinely hot words for HWT to find;
 *  - phase drift: the hot set rotates every phase_length accesses,
 *    modelling frontier/timestep behaviour in GAP/roms;
 *  - request grouping: latency-sensitive workloads (Redis) declare
 *    accesses-per-request so the simulator can report p99 latency.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "common/zipf.hh"

namespace m5 {

/** One generated memory access. */
struct AccessEvent
{
    VAddr va;
    bool is_write;
};

/** A class of pages sharing a sparsity profile. */
struct SparsityClass
{
    double page_fraction;   //!< Fraction of pages in this class.
    unsigned words_min;     //!< Minimum active 64B words per page.
    unsigned words_max;     //!< Maximum active 64B words per page.
    double word_zipf_alpha; //!< Skew of word popularity within a page.
    //! Sweep the active words with a per-page cursor instead of sampling
    //! them: models dense numeric code streaming through arrays, so a
    //! page's words are covered as soon as it has ~words accesses.
    bool sweep = false;
};

/** Full parameter set of a synthetic benchmark. */
struct SyntheticParams
{
    std::string name;
    std::size_t footprint_pages = 1 << 18;
    //! Page popularity is a two-slope Zipf: ranks below
    //! plateau_fraction * footprint follow a mild head exponent
    //! (head_alpha), the rest follow page_zipf_alpha, continuous at the
    //! knee.  The head models an active working set larger than the LLC
    //! (without it, cache filtering flattens the post-LLC stream and no
    //! migration policy can help); the head *gradient* keeps "hot" and
    //! "warm" pages distinguishable, which Figure 3's access-count-ratio
    //! metric depends on.
    double page_zipf_alpha = 0.5;  //!< Tail skew (Figure 10).
    double head_alpha = 0.5;       //!< Head skew (< tail skew).
    double plateau_fraction = 0.02; //!< Knee position.
    double uniform_fraction = 0.1; //!< Background uniform accesses.
    std::vector<SparsityClass> sparsity; //!< Must sum to 1 (Figure 4).
    double read_fraction = 0.75;
    //! Spatial clustering of hotness: consecutive popularity ranks map
    //! into the same VA block of this many pages.  Real applications keep
    //! hot structures contiguous, which region-based monitors (DAMON)
    //! exploit; allocator-scattered apps (Redis) use small values.
    std::size_t hot_cluster_pages = 64;
    std::uint64_t phase_length = 0; //!< Accesses per phase; 0 = static.
    double phase_shift_fraction = 0.0; //!< Hot-set rotation per phase.
    unsigned accesses_per_request = 0; //!< > 0 for latency-sensitive apps.
};

/** Abstract access-stream source. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Generate the next access. */
    virtual AccessEvent next() = 0;

    /** Workload name. */
    virtual const std::string &name() const = 0;

    /** Number of virtual pages the workload touches. */
    virtual std::size_t footprintPages() const = 0;

    /** Accesses per request (0 = throughput-oriented). */
    virtual unsigned accessesPerRequest() const = 0;
};

/** The parameterized synthetic generator. */
class SyntheticWorkload : public Workload
{
  public:
    /**
     * @param params Benchmark parameters.
     * @param seed Deterministic stream seed.
     */
    SyntheticWorkload(const SyntheticParams &params, std::uint64_t seed);

    AccessEvent next() override;
    const std::string &name() const override { return params_.name; }
    std::size_t footprintPages() const override
    {
        return params_.footprint_pages;
    }
    unsigned accessesPerRequest() const override
    {
        return params_.accesses_per_request;
    }

    /** The parameters in use. */
    const SyntheticParams &params() const { return params_; }

    /** Active-word count of a virtual page (tests, analysis). */
    unsigned activeWords(Vpn vpn) const;

    /** Sparsity class index of a virtual page. */
    unsigned classOf(Vpn vpn) const { return page_class_[vpn]; }

  private:
    void assignClasses();

    SyntheticParams params_;
    Rng rng_;
    AliasSampler page_pop_; //!< Plateau-Zipf page popularity over ranks.
    std::vector<ZipfSampler> word_zipf_; //!< One per sparsity class.
    std::vector<std::uint32_t> perm_;    //!< Popularity rank -> page.
    std::vector<std::uint8_t> page_class_;
    //! Concatenated active-word offsets; per-page slices via word_begin_.
    std::vector<std::uint8_t> word_pool_;
    std::vector<std::uint32_t> word_begin_;
    std::vector<std::uint8_t> sweep_cursor_; //!< Per-page sweep position.
    std::uint64_t accesses_ = 0;
    std::size_t phase_offset_ = 0;
};

/**
 * Round-robin interleaving of n independent instances, each in its own
 * address range — the Figure 11 multi-process scaling workload and the
 * SPECrate "8 instances" setup.
 */
class MultiWorkload : public Workload
{
  public:
    explicit MultiWorkload(
        std::vector<std::unique_ptr<SyntheticWorkload>> instances);

    AccessEvent next() override;
    const std::string &name() const override { return name_; }
    std::size_t footprintPages() const override { return total_pages_; }
    unsigned accessesPerRequest() const override;

    /** Number of instances. */
    std::size_t instances() const { return instances_.size(); }

  private:
    std::vector<std::unique_ptr<SyntheticWorkload>> instances_;
    std::vector<std::size_t> base_page_;
    std::string name_;
    std::size_t total_pages_ = 0;
    std::size_t next_instance_ = 0;
};

} // namespace m5
