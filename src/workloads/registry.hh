/**
 * @file
 * Benchmark registry: the paper's evaluated workloads (Table 3) plus the
 * two extra Figure 4 applications (Memcached, CacheLib), each mapped to a
 * calibrated SyntheticParams set.
 *
 * Footprints and cache capacities are expressed at full paper scale and
 * multiplied by `scale` (default 1/16) so experiments complete in seconds
 * while preserving the paper's capacity *ratios* (DDR cap = 3/8 of the CXL
 * footprint, CAT-scaled LLC, etc.).
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace m5 {

/** Default scale factor applied to footprints and capacities. */
inline constexpr double kDefaultScale = 1.0 / 16.0;

/** Static metadata of a benchmark (Table 3). */
struct BenchmarkInfo
{
    std::string name;
    double footprint_gb;  //!< Paper-scale memory footprint.
    unsigned cores;       //!< Cores used in the paper's runs.
    unsigned cat_ways;    //!< LLC ways granted via Intel CAT (of 15).
};

/** The twelve benchmarks of Figures 3 and 9, in the paper's order. */
const std::vector<std::string> &benchmarkNames();

/** The fourteen benchmarks of Figure 4 (adds Memcached and CacheLib). */
const std::vector<std::string> &sparsityBenchmarkNames();

/** Table 3 metadata; fatal on unknown names. */
const BenchmarkInfo &benchmarkInfo(const std::string &name);

/** Calibrated synthetic parameters for a benchmark at the given scale. */
SyntheticParams benchmarkParams(const std::string &name,
                                double scale = kDefaultScale);

/** Build a single-instance workload. */
std::unique_ptr<SyntheticWorkload> makeWorkload(
    const std::string &name, double scale = kDefaultScale,
    std::uint64_t seed = 1);

/**
 * Build an n-instance interleaved workload (Figure 11; SPECrate).  Each
 * instance gets footprint scale/n and a distinct seed, so the combined
 * footprint matches the single-instance build while the address
 * cardinality grows with n.
 */
std::unique_ptr<Workload> makeMultiWorkload(
    const std::string &name, std::size_t instances,
    double scale = kDefaultScale, std::uint64_t seed = 1);

/**
 * Build a colocation mix: several *different* benchmarks interleaved
 * round-robin, each in its own address range at the given scale — the
 * datacenter scenario of heterogeneous tenants sharing one tiered-memory
 * node.
 */
std::unique_ptr<Workload> makeMixedWorkload(
    const std::vector<std::string> &names, double scale = kDefaultScale,
    std::uint64_t seed = 1);

/** LLC bytes for a benchmark at the given scale (CAT-scaled, §6). */
std::uint64_t benchmarkLlcBytes(const std::string &name,
                                double scale = kDefaultScale);

/** @{ Parameter tables defined per suite (spec.cc, gap.cc, apps.cc).
 *  Footprint is filled in by benchmarkParams(); these return the shape
 *  parameters only.  Fatal on unknown names. */
SyntheticParams specParams(const std::string &name);
SyntheticParams gapParams(const std::string &name);
SyntheticParams appParams(const std::string &name);
/** @} */

} // namespace m5
