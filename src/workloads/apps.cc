/**
 * @file
 * Server application models: Redis (YCSB-A), Liblinear (KDD 2012),
 * Memcached and CacheLib (§6, Table 3; Memcached/CacheLib appear in
 * Figure 4 only).
 *
 * Calibration targets:
 *  - Figure 4: Redis/Memcached/CacheLib are sparse — <=16 of 64 words
 *    touched in 86% / 76% / 74% of pages; liblinear has P(<=16) = 15%.
 *  - §7.2: Redis page-level accesses are near-uniform random (so DAMON's
 *    continuous scanning at equilibrium only hurts, Figure 9: -16%);
 *    within a page, allocator-packed small values create genuinely hot
 *    words (Guideline 4: HWT-driven nomination wins on Redis).
 *  - Figure 10: liblinear is strongly skewed (M5 +24%/+14% over
 *    ANB/DAMON).
 *  - Redis is latency-sensitive: accesses are grouped into requests so
 *    the simulator can report p99 latency.
 */

#include "workloads/registry.hh"

#include "common/logging.hh"

namespace m5 {

SyntheticParams
appParams(const std::string &name)
{
    SyntheticParams p;
    p.name = name;

    p.hot_cluster_pages = 8; // Allocator-scattered hot objects.
    if (name == "redis") {
        p.page_zipf_alpha = 0.50;
        p.head_alpha = 0.15;
        p.plateau_fraction = 0.25;
        p.uniform_fraction = 0.35;
        p.read_fraction = 0.60; // YCSB-A: 50/50 reads and read-modify-write.
        p.sparsity = {
            {0.30, 2, 4, 0.80},
            {0.35, 5, 8, 0.80},
            {0.21, 9, 16, 0.70},
            {0.09, 17, 32, 0.50},
            {0.05, 33, 64, 0.30},
        };
        p.accesses_per_request = 24;
    } else if (name == "memcached") {
        p.page_zipf_alpha = 0.55;
        p.head_alpha = 0.20;
        p.plateau_fraction = 0.22;
        p.uniform_fraction = 0.30;
        p.read_fraction = 0.70;
        p.sparsity = {
            {0.22, 2, 4, 0.80},
            {0.30, 5, 8, 0.80},
            {0.24, 9, 16, 0.70},
            {0.14, 17, 32, 0.50},
            {0.10, 33, 64, 0.30},
        };
        p.accesses_per_request = 16;
    } else if (name == "cachelib") {
        p.page_zipf_alpha = 0.75;
        p.head_alpha = 0.45;
        p.plateau_fraction = 0.10;
        p.uniform_fraction = 0.16;
        p.read_fraction = 0.75;
        p.sparsity = {
            {0.20, 2, 4, 0.80},
            {0.28, 5, 8, 0.80},
            {0.26, 9, 16, 0.70},
            {0.16, 17, 32, 0.50},
            {0.10, 33, 64, 0.30},
        };
        p.accesses_per_request = 16;
    } else if (name == "liblinear") {
        p.hot_cluster_pages = 128; // Contiguous feature matrices.
        p.page_zipf_alpha = 1.30;
        p.head_alpha = 0.70;
        p.plateau_fraction = 0.04;
        p.uniform_fraction = 0.05;
        p.read_fraction = 0.80;
        p.sparsity = {
            {0.15, 4, 16, 0.45, false},
            {0.25, 17, 32, 0.35, false},
            {0.20, 33, 48, 0.25, true},
            {0.40, 49, 64, 0.15, true},
        };
        p.phase_length = 5'000'000;
        p.phase_shift_fraction = 0.02;
    } else {
        m5_fatal("unknown application benchmark '%s'", name.c_str());
    }
    return p;
}

} // namespace m5
