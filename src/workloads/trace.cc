#include "workloads/trace.hh"

#include <cstdio>
#include <memory>

#include "common/logging.hh"

namespace m5 {
namespace {

constexpr std::uint64_t kMagic = 0x4d35545243453031ULL; // "M5TRCE01"

struct FileCloser
{
    void operator()(std::FILE *f) const { if (f) std::fclose(f); }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

} // namespace

void
TraceBuffer::save(const std::string &path) const
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        m5_fatal("cannot open trace file '%s' for writing", path.c_str());
    const std::uint64_t n = records_.size();
    if (std::fwrite(&kMagic, sizeof(kMagic), 1, f.get()) != 1 ||
        std::fwrite(&n, sizeof(n), 1, f.get()) != 1 ||
        (n && std::fwrite(records_.data(), sizeof(TraceRecord), n,
                          f.get()) != n)) {
        m5_fatal("short write to trace file '%s'", path.c_str());
    }
}

TraceBuffer
TraceBuffer::load(const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        m5_fatal("cannot open trace file '%s'", path.c_str());
    std::uint64_t magic = 0;
    std::uint64_t n = 0;
    if (std::fread(&magic, sizeof(magic), 1, f.get()) != 1 ||
        magic != kMagic ||
        std::fread(&n, sizeof(n), 1, f.get()) != 1) {
        m5_fatal("'%s' is not an M5 trace file", path.c_str());
    }
    TraceBuffer buf;
    buf.records_.resize(n);
    if (n && std::fread(buf.records_.data(), sizeof(TraceRecord), n,
                        f.get()) != n) {
        m5_fatal("short read from trace file '%s'", path.c_str());
    }
    return buf;
}

} // namespace m5
