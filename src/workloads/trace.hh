/**
 * @file
 * Cache-filtered access traces.
 *
 * §7.1 evaluates trackers on Pin + Ramulator traces of cache-filtered,
 * time-stamped DRAM addresses.  We reproduce the methodology by recording
 * the post-LLC physical access stream of a simulated run and replaying it
 * into standalone trackers (Figure 7) — the tracker sees exactly what the
 * CXL controller would.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace m5 {

/** One trace record: a post-LLC DRAM access. */
struct TraceRecord
{
    Addr pa;
    Tick time;
    bool is_write;
};

/** In-memory trace buffer. */
class TraceBuffer
{
  public:
    /** Append one record. */
    void
    push(Addr pa, Tick time, bool is_write)
    {
        records_.push_back({pa, time, is_write});
    }

    /** All records, in arrival order. */
    const std::vector<TraceRecord> &records() const { return records_; }

    /** Number of records. */
    std::size_t size() const { return records_.size(); }

    /** Drop everything. */
    void clear() { records_.clear(); }

    /** Reserve capacity up front. */
    void reserve(std::size_t n) { records_.reserve(n); }

    /** Save to a compact binary file. */
    void save(const std::string &path) const;

    /** Load from a file written by save(). */
    static TraceBuffer load(const std::string &path);

  private:
    std::vector<TraceRecord> records_;
};

} // namespace m5
