#include "sketch/hash.hh"

#include "common/logging.hh"

namespace m5 {

std::uint64_t
mix64(std::uint64_t x, std::uint64_t seed)
{
    x += seed + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

HashFamily::HashFamily(unsigned rows, std::uint64_t width, std::uint64_t seed)
    : width_(width)
{
    m5_assert(rows > 0, "HashFamily needs at least one row");
    m5_assert(width > 0, "HashFamily needs positive width");
    seeds_.reserve(rows);
    std::uint64_t s = seed;
    for (unsigned i = 0; i < rows; ++i) {
        s = mix64(s, 0xd1b54a32d192ed03ULL + i);
        seeds_.push_back(s);
    }
}

} // namespace m5
