/**
 * @file
 * CountMin-Sketch access-count estimator (§5.1, Figure 5 left half).
 *
 * The hardware unit is an SRAM array of H rows x W columns of counters.  A
 * memory address is hashed by H functions in parallel; the indexed counter in
 * each row is incremented, and the minimum of the H incremented values is the
 * estimated access count.  Counters may saturate at a configurable width, as
 * a real SRAM counter would.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "sketch/hash.hh"

namespace m5 {

/** CountMin-Sketch with saturating counters. */
class CmSketch
{
  public:
    /**
     * @param rows H, number of hash rows.
     * @param cols W, counters per row (total N = H*W).
     * @param seed Hash seed.
     * @param counter_bits Counter width in bits (saturating); 0 = unbounded.
     */
    CmSketch(unsigned rows, std::uint64_t cols, std::uint64_t seed,
             unsigned counter_bits = 32);

    /**
     * Record one access and return the updated estimate (min over rows).
     */
    std::uint64_t update(std::uint64_t key);

    /** Estimate the count of a key without updating. */
    std::uint64_t estimate(std::uint64_t key) const;

    /** Zero all counters (epoch boundary). */
    void reset();

    /** Total counters N = H*W. */
    std::uint64_t entries() const { return rows_ * cols_; }

    /** Number of hash rows H. */
    unsigned rows() const { return rows_; }

    /** Counters per row W. */
    std::uint64_t cols() const { return cols_; }

    /** Saturation limit (max representable count). */
    std::uint64_t counterMax() const { return counter_max_; }

  private:
    unsigned rows_;
    std::uint64_t cols_;
    std::uint64_t counter_max_;
    HashFamily hash_;
    std::vector<std::uint64_t> table_; //!< rows_ x cols_, row-major.
};

} // namespace m5
