/**
 * @file
 * Space-Saving top-K tracker (Metwally et al.), the Mithril-style
 * counter-based baseline the paper compares CM-Sketch against (§5.1, §7.1).
 *
 * Hardware cost model: the stream summary is an N-entry CAM that must be
 * matched in parallel on every access, which is why the synthesizable N is
 * tiny (50 on the FPGA, 2K in 7nm ASIC) compared to CM-Sketch's SRAM.
 *
 * The software model keeps a count-ordered index so updates are O(log N);
 * behaviour is identical to the textbook stream summary.
 */

#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "sketch/sorted_topk.hh"

namespace m5 {

/** Classic Space-Saving stream summary over N counters. */
class SpaceSaving
{
  public:
    /** @param n Number of monitored counters (CAM entries). */
    explicit SpaceSaving(std::size_t n);

    /** Record one access to key. @return What the update did. */
    TopKDelta update(std::uint64_t key);

    /** Estimated count of key (0 if unmonitored). */
    std::uint64_t estimate(std::uint64_t key) const;

    /** The k hottest monitored entries, descending by count. */
    std::vector<TopKEntry> topK(std::size_t k) const;

    /** Number of monitored entries right now. */
    std::size_t size() const { return by_key_.size(); }

    /** Capacity N. */
    std::size_t capacity() const { return n_; }

    /** Clear for the next epoch. */
    void reset();

  private:
    struct Info
    {
        std::uint64_t count;
        std::uint64_t error; //!< Space-Saving overestimation bound.
    };

    using CountIndex = std::multimap<std::uint64_t, std::uint64_t>;

    std::size_t n_;
    std::unordered_map<std::uint64_t,
                       std::pair<Info, CountIndex::iterator>> by_key_;
    CountIndex by_count_; //!< count -> key, ascending; begin() is the min.
};

} // namespace m5
