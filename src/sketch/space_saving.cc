#include "sketch/space_saving.hh"

#include <algorithm>

#include "common/logging.hh"

namespace m5 {

SpaceSaving::SpaceSaving(std::size_t n) : n_(n)
{
    m5_assert(n > 0, "SpaceSaving needs N > 0");
    by_key_.reserve(n);
}

TopKDelta
SpaceSaving::update(std::uint64_t key)
{
    auto it = by_key_.find(key);
    if (it != by_key_.end()) {
        Info &info = it->second.first;
        by_count_.erase(it->second.second);
        ++info.count;
        it->second.second = by_count_.emplace(info.count, key);
        return {};
    }
    if (by_key_.size() < n_) {
        auto pos = by_count_.emplace(1, key);
        by_key_.emplace(key, std::make_pair(Info{1, 0}, pos));
        return {true, false, 0};
    }
    // Evict the minimum-count entry; the newcomer inherits min+1 with
    // overestimation error min (standard Space-Saving).
    auto min_it = by_count_.begin();
    const std::uint64_t min_count = min_it->first;
    const std::uint64_t evicted_tag = min_it->second;
    by_key_.erase(min_it->second);
    by_count_.erase(min_it);
    auto pos = by_count_.emplace(min_count + 1, key);
    by_key_.emplace(key, std::make_pair(Info{min_count + 1, min_count}, pos));
    return {true, true, evicted_tag};
}

std::uint64_t
SpaceSaving::estimate(std::uint64_t key) const
{
    auto it = by_key_.find(key);
    return it == by_key_.end() ? 0 : it->second.first.count;
}

std::vector<TopKEntry>
SpaceSaving::topK(std::size_t k) const
{
    std::vector<TopKEntry> out;
    out.reserve(std::min(k, by_key_.size()));
    for (auto it = by_count_.rbegin();
         it != by_count_.rend() && out.size() < k; ++it) {
        out.push_back({it->second, it->first});
    }
    return out;
}

void
SpaceSaving::reset()
{
    by_key_.clear();
    by_count_.clear();
}

} // namespace m5
