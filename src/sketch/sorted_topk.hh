/**
 * @file
 * Sorted top-K CAM model (§5.1, Figure 5 right half).
 *
 * The hardware unit is a K-entry content-addressable memory keeping
 * (address tag, access count) pairs sorted by count.  On a tag hit the
 * count is replaced with the sketch estimate; on a miss the estimate is
 * compared with the table minimum and conditionally evicts it.
 *
 * The hardware does all K comparisons in parallel; the software model uses
 * a hash index plus a lazy min-heap so the per-access cost is O(1)
 * amortized even for K = 128.
 */

#pragma once

#include <cstdint>
#include <queue>
#include <unordered_map>
#include <vector>

namespace m5 {

/** A (tag, count) CAM entry. */
struct TopKEntry
{
    std::uint64_t tag;   //!< Page or word address.
    std::uint64_t count; //!< Estimated access count.
};

/**
 * What one update did to a top-K structure.  Plain data, so the sketch
 * layer stays free of any tracing dependency; HPT/HWT turn deltas into
 * trace events (docs/TRACING.md).
 */
struct TopKDelta
{
    bool inserted = false;         //!< A new tag entered the table.
    bool evicted = false;          //!< An old tag was displaced.
    std::uint64_t evicted_tag = 0; //!< Valid when `evicted`.
};

/** Sorted top-K CAM: keeps the K hottest addresses seen this epoch. */
class SortedTopK
{
  public:
    /** @param k Table capacity (> 0). */
    explicit SortedTopK(std::size_t k);

    /**
     * Offer an (address, estimated count) pair.
     *
     * Hit: update the matched entry's count.  Miss: if count exceeds the
     * table minimum (or the table is not full), install the pair,
     * evicting the minimum entry.
     *
     * @return What the offer did to the table.
     */
    TopKDelta offer(std::uint64_t tag, std::uint64_t count);

    /** Entries sorted by descending count. */
    std::vector<TopKEntry> entries() const;

    /** Smallest tracked count (0 when not full). */
    std::uint64_t minCount() const;

    /** Current occupancy. */
    std::size_t size() const { return table_.size(); }

    /** Capacity K. */
    std::size_t capacity() const { return k_; }

    /** Clear for the next epoch. */
    void reset();

  private:
    struct HeapItem
    {
        std::uint64_t count;
        std::uint64_t tag;
        bool
        operator>(const HeapItem &o) const
        {
            return count > o.count;
        }
    };

    /** Drop heap entries that no longer match the live table. */
    void pruneHeap() const;

    std::size_t k_;
    std::unordered_map<std::uint64_t, std::uint64_t> table_; //!< tag->count
    //! Lazy min-heap over (count, tag); stale items pruned on access.
    mutable std::priority_queue<HeapItem, std::vector<HeapItem>,
                                std::greater<HeapItem>> min_heap_;
};

} // namespace m5
