#include "sketch/cm_sketch.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"
#include "telemetry/prof.hh"

namespace m5 {

CmSketch::CmSketch(unsigned rows, std::uint64_t cols, std::uint64_t seed,
                   unsigned counter_bits)
    : rows_(rows), cols_(cols),
      counter_max_(counter_bits == 0 || counter_bits >= 64
                   ? std::numeric_limits<std::uint64_t>::max()
                   : (1ULL << counter_bits) - 1),
      hash_(rows, cols, seed),
      table_(static_cast<std::size_t>(rows) * cols, 0)
{
    m5_assert(rows > 0 && cols > 0, "CmSketch needs rows > 0 and cols > 0");
}

std::uint64_t
CmSketch::update(std::uint64_t key)
{
    PROF_SCOPE("sketch.cm.update");
    std::uint64_t min_val = std::numeric_limits<std::uint64_t>::max();
    for (unsigned r = 0; r < rows_; ++r) {
        std::uint64_t &c =
            table_[static_cast<std::size_t>(r) * cols_ + hash_(r, key)];
        if (c < counter_max_)
            ++c;
        min_val = std::min(min_val, c);
    }
    return min_val;
}

std::uint64_t
CmSketch::estimate(std::uint64_t key) const
{
    std::uint64_t min_val = std::numeric_limits<std::uint64_t>::max();
    for (unsigned r = 0; r < rows_; ++r) {
        min_val = std::min(min_val,
            table_[static_cast<std::size_t>(r) * cols_ + hash_(r, key)]);
    }
    return min_val;
}

void
CmSketch::reset()
{
    std::fill(table_.begin(), table_.end(), 0);
}

} // namespace m5
