/**
 * @file
 * Uniform interface over the two top-K tracker designs the paper evaluates
 * (§5.1, §7.1): CM-Sketch + sorted top-K CAM, and Space-Saving.
 *
 * HPT and HWT in src/cxl wrap a TopKTracker with page / word address
 * extraction; the Figure 7 sweep instantiates both kinds standalone.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sketch/cm_sketch.hh"
#include "sketch/sorted_topk.hh"
#include "sketch/space_saving.hh"

namespace m5 {

/** Tracker algorithm selector. */
enum class TrackerKind
{
    CmSketchTopK, //!< SRAM CM-Sketch + K-entry sorted CAM.
    SpaceSavingTopK, //!< N-entry CAM stream summary.
};

/** Human-readable name of a tracker kind. */
std::string trackerKindName(TrackerKind kind);

/** Geometry and seed for a top-K tracker. */
struct TrackerConfig
{
    TrackerKind kind = TrackerKind::CmSketchTopK;
    std::uint64_t entries = 32 * 1024; //!< N = H*W (CM) or CAM entries (SS).
    std::size_t k = 5;                 //!< Top-K report size.
    unsigned hash_rows = 4;            //!< H (CM-Sketch only).
    unsigned counter_bits = 32;        //!< SRAM counter width (CM only).
    std::uint64_t seed = 0x5eedULL;
};

/** Abstract streaming top-K tracker over 64-bit keys. */
class TopKTracker
{
  public:
    virtual ~TopKTracker() = default;

    /** Observe one access to key. @return What it did to the top-K. */
    virtual TopKDelta access(std::uint64_t key) = 0;

    /** Report the current top-K, descending by estimated count. */
    virtual std::vector<TopKEntry> query() const = 0;

    /** Reset all state for a fresh epoch. */
    virtual void reset() = 0;

    /** Estimated count of an arbitrary key. */
    virtual std::uint64_t estimate(std::uint64_t key) const = 0;

    /** Configured number of count entries N. */
    virtual std::uint64_t entries() const = 0;

    /** Report size K. */
    virtual std::size_t k() const = 0;

    /** Algorithm kind. */
    virtual TrackerKind kind() const = 0;
};

/** CM-Sketch-backed tracker: Figure 5's architecture. */
class CmSketchTracker : public TopKTracker
{
  public:
    explicit CmSketchTracker(const TrackerConfig &cfg);

    TopKDelta access(std::uint64_t key) override;
    std::vector<TopKEntry> query() const override;
    void reset() override;
    std::uint64_t estimate(std::uint64_t key) const override;
    std::uint64_t entries() const override { return sketch_.entries(); }
    std::size_t k() const override { return cam_.capacity(); }
    TrackerKind kind() const override { return TrackerKind::CmSketchTopK; }

    /** Direct access to the sketch (tests, ablations). */
    const CmSketch &sketch() const { return sketch_; }

  private:
    CmSketch sketch_;
    SortedTopK cam_;
};

/** Space-Saving-backed tracker. */
class SpaceSavingTracker : public TopKTracker
{
  public:
    explicit SpaceSavingTracker(const TrackerConfig &cfg);

    TopKDelta access(std::uint64_t key) override;
    std::vector<TopKEntry> query() const override;
    void reset() override;
    std::uint64_t estimate(std::uint64_t key) const override;
    std::uint64_t entries() const override { return ss_.capacity(); }
    std::size_t k() const override { return k_; }
    TrackerKind kind() const override { return TrackerKind::SpaceSavingTopK; }

  private:
    SpaceSaving ss_;
    std::size_t k_;
};

/** Build a tracker from a config. */
std::unique_ptr<TopKTracker> makeTracker(const TrackerConfig &cfg);

} // namespace m5
