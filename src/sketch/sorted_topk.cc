#include "sketch/sorted_topk.hh"

#include <algorithm>

#include "common/logging.hh"

namespace m5 {

SortedTopK::SortedTopK(std::size_t k) : k_(k)
{
    m5_assert(k > 0, "SortedTopK needs K > 0");
    table_.reserve(k * 2);
}

void
SortedTopK::pruneHeap() const
{
    while (!min_heap_.empty()) {
        const HeapItem &top = min_heap_.top();
        auto it = table_.find(top.tag);
        if (it != table_.end() && it->second == top.count)
            return;
        min_heap_.pop();
    }
}

TopKDelta
SortedTopK::offer(std::uint64_t tag, std::uint64_t count)
{
    // Bound the lazy heap: rebuild from the live table when stale items
    // dominate (long epochs with many CAM hits).
    if (min_heap_.size() > std::max<std::size_t>(64, table_.size() * 8)) {
        while (!min_heap_.empty())
            min_heap_.pop();
        for (const auto &[t, c] : table_)
            min_heap_.push({c, t});
    }

    auto it = table_.find(tag);
    if (it != table_.end()) {
        // CAM hit: refresh the count (counts only grow within an epoch,
        // so the old heap item goes stale and is lazily pruned).
        if (it->second != count) {
            it->second = count;
            min_heap_.push({count, tag});
        }
        return {};
    }
    if (table_.size() < k_) {
        table_.emplace(tag, count);
        min_heap_.push({count, tag});
        return {true, false, 0};
    }
    pruneHeap();
    m5_assert(!min_heap_.empty(), "top-K heap lost its entries");
    if (count <= min_heap_.top().count)
        return {};
    const std::uint64_t evicted_tag = min_heap_.top().tag;
    table_.erase(evicted_tag);
    min_heap_.pop();
    table_.emplace(tag, count);
    min_heap_.push({count, tag});
    return {true, true, evicted_tag};
}

std::vector<TopKEntry>
SortedTopK::entries() const
{
    std::vector<TopKEntry> out;
    out.reserve(table_.size());
    for (const auto &[tag, count] : table_)
        out.push_back({tag, count});
    std::sort(out.begin(), out.end(),
        [](const TopKEntry &a, const TopKEntry &b) {
            if (a.count != b.count)
                return a.count > b.count;
            return a.tag < b.tag;
        });
    return out;
}

std::uint64_t
SortedTopK::minCount() const
{
    if (table_.size() < k_)
        return 0;
    pruneHeap();
    return min_heap_.empty() ? 0 : min_heap_.top().count;
}

void
SortedTopK::reset()
{
    table_.clear();
    while (!min_heap_.empty())
        min_heap_.pop();
}

} // namespace m5
