/**
 * @file
 * Hash functions for the sketch units.
 *
 * A hardware CM-Sketch row uses a cheap universal hash of the 42-bit word
 * address (or 36-bit PFN).  We model that with a splitmix64-style finalizer
 * seeded per row, which is empirically close to uniform and trivially
 * synthesizable (xor/shift/multiply).
 */

#pragma once

#include <cstdint>
#include <vector>

namespace m5 {

/** One round of splitmix64 finalization mixed with a seed. */
std::uint64_t mix64(std::uint64_t x, std::uint64_t seed);

/** A family of H independent hash functions onto [0, width). */
class HashFamily
{
  public:
    /**
     * @param rows Number of independent functions (H).
     * @param width Output range (W).
     * @param seed Base seed; each row derives its own.
     */
    HashFamily(unsigned rows, std::uint64_t width, std::uint64_t seed);

    /** Hash key with function `row` onto [0, width). */
    std::uint64_t
    operator()(unsigned row, std::uint64_t key) const
    {
        return mix64(key, seeds_[row]) % width_;
    }

    /** Number of functions. */
    unsigned rows() const { return static_cast<unsigned>(seeds_.size()); }

    /** Output range. */
    std::uint64_t width() const { return width_; }

  private:
    std::vector<std::uint64_t> seeds_;
    std::uint64_t width_;
};

} // namespace m5
