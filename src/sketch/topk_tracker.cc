#include "sketch/topk_tracker.hh"

#include "common/logging.hh"

namespace m5 {

std::string
trackerKindName(TrackerKind kind)
{
    switch (kind) {
      case TrackerKind::CmSketchTopK:
        return "CM-Sketch";
      case TrackerKind::SpaceSavingTopK:
        return "Space-Saving";
    }
    m5_panic("unknown TrackerKind");
}

CmSketchTracker::CmSketchTracker(const TrackerConfig &cfg)
    : sketch_(cfg.hash_rows,
              std::max<std::uint64_t>(1, cfg.entries / cfg.hash_rows),
              cfg.seed, cfg.counter_bits),
      cam_(cfg.k)
{
}

TopKDelta
CmSketchTracker::access(std::uint64_t key)
{
    const std::uint64_t est = sketch_.update(key);
    return cam_.offer(key, est);
}

std::vector<TopKEntry>
CmSketchTracker::query() const
{
    return cam_.entries();
}

void
CmSketchTracker::reset()
{
    sketch_.reset();
    cam_.reset();
}

std::uint64_t
CmSketchTracker::estimate(std::uint64_t key) const
{
    return sketch_.estimate(key);
}

SpaceSavingTracker::SpaceSavingTracker(const TrackerConfig &cfg)
    : ss_(cfg.entries), k_(cfg.k)
{
}

TopKDelta
SpaceSavingTracker::access(std::uint64_t key)
{
    return ss_.update(key);
}

std::vector<TopKEntry>
SpaceSavingTracker::query() const
{
    return ss_.topK(k_);
}

void
SpaceSavingTracker::reset()
{
    ss_.reset();
}

std::uint64_t
SpaceSavingTracker::estimate(std::uint64_t key) const
{
    return ss_.estimate(key);
}

std::unique_ptr<TopKTracker>
makeTracker(const TrackerConfig &cfg)
{
    switch (cfg.kind) {
      case TrackerKind::CmSketchTopK:
        return std::make_unique<CmSketchTracker>(cfg);
      case TrackerKind::SpaceSavingTopK:
        return std::make_unique<SpaceSavingTracker>(cfg);
    }
    m5_panic("unknown TrackerKind");
}

} // namespace m5
