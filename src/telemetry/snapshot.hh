/**
 * @file
 * EpochSnapshotter: per-epoch telemetry export.
 *
 * Samples a StatRegistry on the simulator's epoch boundary and appends
 * one JSON object per epoch to a JSONL file:
 *
 *   {"epoch":3,"time_ns":3000000,"stats":{"cache.llc.hits":123, ...}}
 *
 * Counters serialize as integers, gauges as %.17g doubles (round-trip
 * exact, the same convention as the runner's CSV rows), histograms as
 * {"edges":[..],"counts":[..],"total":n,"p50":..,"p90":..,"p99":..}
 * (percentiles report the upper edge of the holding bucket).  finish()
 * writes the final sample; rollupTable() renders the same sample as a
 * TextTable — histogram rows additionally break the percentiles out into
 * p50/p90/p99 columns — so the end-of-run summary a tool prints (via
 * emitTable) matches the last JSONL line field for field.
 *
 * The snapshotter only *reads* registered statistics and its epoch event
 * consumes zero simulated CPU time, so enabling telemetry never changes
 * simulation results — two identical seeded runs produce byte-identical
 * telemetry (tests/test_telemetry.cc pins this down).
 */

#pragma once

#include <cstdint>
#include <fstream>
#include <string>

#include "common/table.hh"
#include "common/types.hh"
#include "telemetry/registry.hh"

namespace m5 {

/** Telemetry knobs (part of SystemConfig). */
struct TelemetryConfig
{
    //! JSONL output path; empty disables telemetry entirely.
    std::string path;
    //! Emit every Nth epoch (intermediate epochs are skipped, not
    //! accumulated — counters are cumulative anyway).
    std::uint64_t every = 1;
    //! Simulated time between epoch boundaries.
    Tick epoch_period = msToTicks(1.0);
};

/** Samples a StatRegistry per epoch into a JSONL timeline. */
class EpochSnapshotter
{
  public:
    /** Opens (truncates) cfg.path; fatal when it cannot be created. */
    EpochSnapshotter(const StatRegistry &reg, const TelemetryConfig &cfg);

    /** One epoch boundary passed at simulated time `now`. */
    void epoch(Tick now);

    /** Write the final sample and flush (call once, end of run). */
    void finish(Tick now);

    /** Epoch boundaries seen so far (including skipped ones). */
    std::uint64_t epochs() const { return epoch_index_; }

    /** JSONL lines actually written. */
    std::uint64_t linesWritten() const { return lines_written_; }

    /** The current sample as a (stat, value) table for emitTable; value
     *  strings are formatted exactly as in the JSONL stats object. */
    TextTable rollupTable() const;

    /** A single stat value formatted as its JSON fragment. */
    static std::string formatValue(const StatSample &s);

  private:
    void writeLine(Tick now);

    const StatRegistry &reg_;
    TelemetryConfig cfg_;
    std::ofstream out_;
    std::uint64_t epoch_index_ = 0;
    std::uint64_t lines_written_ = 0;
};

} // namespace m5
