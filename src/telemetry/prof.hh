/**
 * @file
 * Host-side profiler: per-component wall-time attribution
 * (docs/PROFILING.md).
 *
 * The StatRegistry counts what the *simulated* machine did and the
 * Tracer explains why; neither may touch the host clock, because both
 * feed result artifacts that must be byte-identical across reruns.
 * This module is the one sanctioned home of host time: components wrap
 * their hot paths in PROF_SCOPE("layer.component.phase") annotations,
 * and the profiler aggregates self/total host-nanoseconds and call
 * counts per node of the dynamic scope tree.
 *
 * Determinism contract:
 *  - steady_clock is read only inside this module, behind ProfClock
 *    (m5lint rule no-raw-clock-outside-prof enforces the boundary).
 *  - A disabled profile (ProfConfig::enabled() false) constructs no
 *    Profiler at all; PROF_SCOPE then costs one thread-local load, and
 *    results, telemetry and traces stay byte-identical to a build
 *    without profiling (tests/test_prof.cc pins this down).
 *  - Host times are exported only to the profile artifacts
 *    (<base>.prof.json and the collapsed-stack <base>.folded), which
 *    are excluded from every determinism comparison.  Call counts and
 *    node paths ARE deterministic and rerun-identical.
 *
 * Aggregation is per-thread: ProfBinding registers a thread-local
 * accumulator tree with the run's Profiler (one mutex acquisition at
 * bind time, none per scope), and exporters merge the per-thread trees
 * at report time — the runner's worker pool stays contention-free.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace m5 {

/**
 * The sanctioned host-clock wrapper: the only place in the tree that
 * may read std::chrono::steady_clock (docs/PROFILING.md).
 */
struct ProfClock
{
    /** Monotonic host nanoseconds since an arbitrary epoch. */
    static std::uint64_t nowNs();
};

/** Profiling knobs (part of SystemConfig); disabled by default. */
struct ProfConfig
{
    //! Artifact base path: <base>.prof.json and <base>.folded are
    //! written by Profiler::save().  Empty = no files.
    std::string base;
    //! Keep the aggregate in memory without writing files (tests).
    bool collect = false;
    //! Test-only clock override; empty uses ProfClock::nowNs().  Lets
    //! tests pin the self/total accounting with a deterministic clock.
    std::function<std::uint64_t()> clock;

    /** True when any sink wants samples. */
    bool
    enabled() const
    {
        return !base.empty() || collect;
    }
};

/** One node of the dynamic scope tree (per-thread, then merged). */
struct ProfNode
{
    std::uint64_t self_ns = 0;  //!< Time in this scope minus children.
    std::uint64_t total_ns = 0; //!< Inclusive time.
    std::uint64_t calls = 0;    //!< Scope entries (and PROF_MARK hits).
    //! Children keyed by scope name; ordered so every export walks the
    //! tree in the same deterministic order.
    std::map<std::string, std::unique_ptr<ProfNode>> children;
};

/** One merged, flattened scope for reports and tests.  `path` joins
 *  the scope names root-first with ';' (the collapsed-stack idiom —
 *  scope names themselves contain dots). */
struct ProfEntry
{
    std::string path;
    unsigned depth = 0;
    std::uint64_t self_ns = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t calls = 0;
};

class Profiler;

/**
 * Per-thread accumulator: the scope stack and its private node tree.
 * Created by ProfBinding, owned by the Profiler, touched by exactly
 * one thread between bind and merge.
 */
class ProfThreadState
{
  public:
    explicit ProfThreadState(const Profiler &owner);

    /** Open a scope named `name` under the current stack top. */
    void enter(const char *name);

    /** Close the innermost scope and charge self/total time. */
    void exit();

    /** Count one occurrence of `name` under the current stack top
     *  without timing it (phase markers). */
    void mark(const char *name);

    /** The private tree (merged by the Profiler at report time). */
    const ProfNode &root() const { return root_; }

  private:
    struct Frame
    {
        ProfNode *node;
        std::uint64_t start_ns;
        std::uint64_t child_ns;
    };

    ProfNode *child(const char *name);

    const Profiler &owner_;
    ProfNode root_;
    std::vector<Frame> stack_; //!< Parallel to the open PROF_SCOPEs.
};

/**
 * The per-run aggregate: owns one ProfThreadState per binding thread
 * and merges them for export.  One Profiler per TieredSystem; bound to
 * the executing thread via ProfBinding, exactly like the Tracer.
 */
class Profiler
{
  public:
    explicit Profiler(ProfConfig cfg);

    /** Host nanoseconds via the config clock (test override aware). */
    std::uint64_t nowNs() const;

    /** Register (and return) this thread's accumulator.  Called by
     *  ProfBinding; the only mutex acquisition on the profiling path. */
    ProfThreadState *bindThread();

    /** Per-thread trees merged into one, children in name order. */
    ProfNode merged() const;

    /** Depth-first flatten of merged(), deterministic order. */
    std::vector<ProfEntry> entries() const;

    /** Top `n` scopes by self time, descending (ties by path). */
    std::vector<ProfEntry> rollup(std::size_t n) const;

    /** Sum of depth-0 total_ns: the profiled wall time. */
    std::uint64_t wallNs() const;

    /** Scopes with at least one call. */
    std::size_t scopeCount() const;

    /** Machine-readable export (docs/PROFILING.md pins the format). */
    void exportJson(std::ostream &os) const;

    /** Collapsed-stack export: `a;b;c <self_ns>` per line, loadable by
     *  speedscope and flamegraph.pl. */
    void exportFolded(std::ostream &os) const;

    /** Write <base>.prof.json and <base>.folded (no-op when base is
     *  empty; fatal on I/O error). */
    void save() const;

    /** The configuration in use. */
    const ProfConfig &config() const { return cfg_; }

  private:
    ProfConfig cfg_;
    mutable std::mutex mutex_; //!< Guards states_ (bind/merge only).
    std::vector<std::unique_ptr<ProfThreadState>> states_;
};

/** This thread's bound accumulator (nullptr = profiling off). */
ProfThreadState *profCurrent();

/**
 * RAII binding of a Profiler to the current thread for the duration of
 * a TieredSystem::run().  Per-thread, like TraceBinding, so parallel
 * sweep workers each feed their own cell's profiler.
 */
class ProfBinding
{
  public:
    explicit ProfBinding(Profiler *prof);
    ~ProfBinding();

    ProfBinding(const ProfBinding &) = delete;
    ProfBinding &operator=(const ProfBinding &) = delete;

  private:
    ProfThreadState *prev_;
};

/**
 * RAII scope: charges [construction, destruction) of host time to the
 * node named `name` under the innermost open scope.  `name` must be a
 * string literal (it keys the aggregate).  close() ends the timing
 * early (idempotent) for scopes that must exclude their tail.
 */
class ProfScope
{
  public:
    explicit ProfScope(const char *name)
        : state_(profCurrent())
    {
        if (state_)
            state_->enter(name);
    }

    ~ProfScope() { close(); }

    void
    close()
    {
        if (state_) {
            state_->exit();
            state_ = nullptr;
        }
    }

    ProfScope(const ProfScope &) = delete;
    ProfScope &operator=(const ProfScope &) = delete;

  private:
    ProfThreadState *state_;
};

} // namespace m5

/**
 * Annotation macros.  Disabled profiling (no ProfBinding on this
 * thread) costs one thread-local load per site; no clock is read, no
 * node is created, and no simulated state is touched either way — the
 * profiler observes the host, never the simulation.
 */
#define M5_PROF_CONCAT2(a, b) a##b
#define M5_PROF_CONCAT(a, b) M5_PROF_CONCAT2(a, b)

/** Time the rest of the enclosing block as scope `name`. */
#define PROF_SCOPE(name)                                                   \
    const ::m5::ProfScope M5_PROF_CONCAT(m5_prof_scope_, __LINE__)(name)

/** Count one occurrence of `name` (untimed phase marker). */
#define PROF_MARK(name)                                                    \
    do {                                                                   \
        if (::m5::ProfThreadState *m5_ps_ = ::m5::profCurrent())           \
            m5_ps_->mark(name);                                            \
    } while (0)
