#include "telemetry/registry.hh"

#include <cmath>

#include "common/logging.hh"

namespace m5 {
namespace {

bool
validStatName(const std::string &name)
{
    if (name.empty())
        return false;
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                        c == '_' || c == '.' || c == '-';
        if (!ok)
            return false;
    }
    return name.front() != '.' && name.back() != '.';
}

} // namespace

StatHistogram::StatHistogram(std::vector<std::uint64_t> edges)
    : edges_(std::move(edges)), counts_(edges_.size() + 1, 0)
{
    if (edges_.empty())
        m5_fatal("StatHistogram needs at least one edge");
    for (std::size_t i = 1; i < edges_.size(); ++i) {
        if (edges_[i - 1] >= edges_[i])
            m5_fatal("StatHistogram edges must be strictly increasing");
    }
}

void
StatHistogram::add(std::uint64_t value, std::uint64_t weight)
{
    std::size_t bucket = edges_.size();
    for (std::size_t i = 0; i < edges_.size(); ++i) {
        if (value < edges_[i]) {
            bucket = i;
            break;
        }
    }
    counts_[bucket] += weight;
    total_ += weight;
}

std::uint64_t
StatHistogram::percentile(double p) const
{
    m5_assert(p > 0.0 && p <= 100.0, "percentile wants 0 < p <= 100");
    if (total_ == 0)
        return 0;
    const auto rank = static_cast<std::uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(total_)));
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        cumulative += counts_[i];
        if (cumulative >= rank)
            return i < edges_.size() ? edges_[i] : edges_.back();
    }
    return edges_.back();
}

void
StatHistogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
}

void
StatRegistry::insert(const std::string &name, Entry entry)
{
    if (!validStatName(name))
        m5_fatal("bad stat name '%s' (want [a-z0-9_.-]+)", name.c_str());
    const auto [it, inserted] = entries_.emplace(name, std::move(entry));
    if (!inserted)
        m5_fatal("stat '%s' registered twice", name.c_str());
}

void
StatRegistry::addCounter(const std::string &name, const std::uint64_t *value)
{
    m5_assert(value != nullptr, "null counter for stat '%s'", name.c_str());
    Entry e;
    e.kind = StatSample::Kind::Counter;
    e.counter = value;
    insert(name, std::move(e));
}

void
StatRegistry::addGauge(const std::string &name, std::function<double()> fn)
{
    m5_assert(fn != nullptr, "null gauge for stat '%s'", name.c_str());
    Entry e;
    e.kind = StatSample::Kind::Gauge;
    e.gauge = std::move(fn);
    insert(name, std::move(e));
}

void
StatRegistry::addHistogram(const std::string &name,
                           const StatHistogram *hist)
{
    m5_assert(hist != nullptr, "null histogram for stat '%s'", name.c_str());
    Entry e;
    e.kind = StatSample::Kind::Histogram;
    e.hist = hist;
    insert(name, std::move(e));
}

bool
StatRegistry::has(const std::string &name) const
{
    return entries_.find(name) != entries_.end();
}

std::uint64_t
StatRegistry::counter(const std::string &name) const
{
    const auto it = entries_.find(name);
    if (it == entries_.end())
        m5_fatal("no stat named '%s'", name.c_str());
    if (it->second.kind != StatSample::Kind::Counter)
        m5_fatal("stat '%s' is not a counter", name.c_str());
    return *it->second.counter;
}

std::vector<StatSample>
StatRegistry::sample() const
{
    std::vector<StatSample> out;
    out.reserve(entries_.size());
    for (const auto &[name, entry] : entries_) {
        StatSample s;
        s.name = name;
        s.kind = entry.kind;
        switch (entry.kind) {
          case StatSample::Kind::Counter:
            s.counter = *entry.counter;
            break;
          case StatSample::Kind::Gauge:
            s.gauge = entry.gauge();
            break;
          case StatSample::Kind::Histogram:
            s.hist = entry.hist;
            break;
        }
        out.push_back(std::move(s));
    }
    return out;
}

} // namespace m5
