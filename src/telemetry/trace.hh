/**
 * @file
 * Causal event tracing: the "why" companion to the StatRegistry's "how
 * much" (docs/TRACING.md).
 *
 * Components emit category-gated structured events — duration spans and
 * instants keyed by *simulated* time, never wall clock — into a per-run
 * ring buffer via the TRACE_SPAN / TRACE_EVENT macros.  The buffer
 * exports Chrome trace_event JSON loadable in Perfetto or
 * chrome://tracing, one lane per category, and feeds a per-page
 * lifecycle ledger so `m5trace explain --page N` can reconstruct the
 * ordered history of a single page through the decision pipeline
 * (accesses -> tracked -> nominated -> elected/deferred -> migrated).
 *
 * Determinism contract: events carry only simulated Ticks and values the
 * simulation itself computed, the ring is per-TieredSystem (bound to the
 * emitting thread via TraceBinding), and the export formats numbers with
 * the same %.17g convention as telemetry, so traces are byte-identical
 * across reruns and worker counts (docs/RUNNER.md).  The m5lint rule
 * `no-wallclock-trace` rejects wall-clock expressions at TRACE_* sites.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"
#include "telemetry/registry.hh"

namespace m5 {

/** Event categories; one bit (and one export lane) each. */
enum class TraceCat : std::uint32_t
{
    Sim      = 1u << 0, //!< Epoch spans, manager wakeups.
    Monitor  = 1u << 1, //!< Bandwidth samples.
    Nominate = 1u << 2, //!< _HPA tracking and nominations.
    Elect    = 1u << 3, //!< Algorithm 1 accept/defer decisions.
    Promote  = 1u << 4, //!< Promoter batch validation.
    Migrate  = 1u << 5, //!< migrate_pages() execution.
    Cxl      = 1u << 6, //!< HPT/HWT top-K insertions and evictions.
    Access   = 1u << 7, //!< Per-access page events (very hot; off by
                        //!< default).
};

/** Every category bit. */
inline constexpr std::uint32_t kTraceAllCats = 0xffu;
/** Default mask: everything except the per-access firehose. */
inline constexpr std::uint32_t kTraceDefaultCats =
    kTraceAllCats & ~static_cast<std::uint32_t>(TraceCat::Access);

/** Lower-case category name ("sim", "monitor", ...). */
std::string traceCatName(TraceCat cat);

/** Export lane (Chrome tid) of a category: bit index, 0-based. */
unsigned traceCatLane(TraceCat cat);

/** Parse a comma-separated category list ("elect,promote" or "all");
 *  fatal on an unknown name, like the CLIs' strict numeric parsing. */
std::uint32_t parseTraceCats(const std::string &csv);

/** One structured argument of an event. */
struct TraceArg
{
    enum class Kind { U64, F64, Str };

    std::string key;
    Kind kind = Kind::U64;
    std::uint64_t u = 0;
    double d = 0.0;
    std::string s;
};

/** Chainable argument-list builder for the TRACE_* macros. */
class TraceArgs
{
  public:
    TraceArgs &
    u(const char *key, std::uint64_t value)
    {
        TraceArg a;
        a.key = key;
        a.kind = TraceArg::Kind::U64;
        a.u = value;
        args_.push_back(std::move(a));
        return *this;
    }

    TraceArgs &
    d(const char *key, double value)
    {
        TraceArg a;
        a.key = key;
        a.kind = TraceArg::Kind::F64;
        a.d = value;
        args_.push_back(std::move(a));
        return *this;
    }

    TraceArgs &
    s(const char *key, std::string value)
    {
        TraceArg a;
        a.key = key;
        a.kind = TraceArg::Kind::Str;
        a.s = std::move(value);
        args_.push_back(std::move(a));
        return *this;
    }

    const std::vector<TraceArg> &list() const { return args_; }

  private:
    std::vector<TraceArg> args_;
};

/** One recorded event ('X' = complete span, 'i' = instant). */
struct TraceEvent
{
    Tick ts = 0;   //!< Simulated start time (ns).
    Tick dur = 0;  //!< Span duration (ns); 0 for instants.
    TraceCat cat = TraceCat::Sim;
    char ph = 'i';
    std::string name;
    std::vector<TraceArg> args;
};

/** Tracing knobs (part of SystemConfig); disabled by default. */
struct TraceConfig
{
    //! Chrome trace_event JSON output path; empty = no file.
    std::string path;
    //! Keep events in memory even without an output file (tests,
    //! m5trace explain).
    bool collect = false;
    //! Enabled-category bitmask (TraceCat bits).
    std::uint32_t categories = kTraceDefaultCats;
    //! Ring-buffer bound; the oldest event is dropped on overflow and
    //! `telemetry.trace.dropped` counts the losses.
    std::size_t ring_capacity = 1u << 20;
    //! Simulated period of the "epoch" spans on the sim lane.
    Tick epoch_period = msToTicks(1.0);
    //! Maintain the per-page lifecycle ledger (m5trace explain).
    bool ledger = false;
    //! Bucket per-epoch access counts for this page into the ledger.
    std::optional<Vpn> ledger_page;

    /** True when any sink wants events. */
    bool
    enabled() const
    {
        return !path.empty() || collect || ledger;
    }
};

/** One line of a reconstructed page lifecycle. */
struct LedgerRecord
{
    Tick ts = 0;
    std::uint64_t seq = 0; //!< Global observation order (tie-break).
    std::string text;      //!< e.g. "nominated (pfn=12, count=9)".
};

/**
 * The per-page lifecycle ledger.
 *
 * Fed by the Tracer *before* ring-buffer admission, so ring overflow
 * never truncates a lifecycle.  Pipeline events (tracked / nominated /
 * promoter and migration outcomes) are kept per page; Elector decisions
 * are kept globally and merged into a page's window on reconstruction;
 * raw accesses are only bucketed per epoch for the configured
 * ledger_page, which bounds memory on long runs.
 */
class PageLedger
{
  public:
    explicit PageLedger(const TraceConfig &cfg);

    /** Record a pipeline event about `page`. */
    void observePage(Vpn page, Tick ts, const std::string &text);

    /** Record a global Elector decision. */
    void observeDecision(Tick ts, bool migrate, const std::string &text);

    /** Count one access to the configured ledger_page. */
    void bucketAccess(Vpn page, Tick now);

    /**
     * The ordered lifecycle of one page: its access buckets and pipeline
     * events, plus every Elector decision inside the page's active
     * window (first pipeline event to migration or last event).
     */
    std::vector<LedgerRecord> lifecycle(Vpn page) const;

    /** Pages with at least one successful promotion, ascending. */
    std::vector<Vpn> migratedPages() const;

    /** Pages with any pipeline event, ascending. */
    std::vector<Vpn> trackedPages() const;

  private:
    struct Decision
    {
        Tick ts;
        std::uint64_t seq;
        bool migrate;
        std::string text;
    };

    struct AccessBucket
    {
        Tick first_ts = 0;
        std::uint64_t seq = 0;
        std::uint64_t count = 0;
    };

    const TraceConfig &cfg_;
    std::uint64_t next_seq_ = 0;
    std::map<Vpn, std::vector<LedgerRecord>> pages_;
    std::vector<Decision> decisions_;
    std::map<std::uint64_t, AccessBucket> access_epochs_; //!< ledger_page.
};

/**
 * The per-run event sink: category gate, ring buffer, ledger, Chrome
 * export.  One Tracer per TieredSystem; thread-bound via TraceBinding.
 */
class Tracer
{
  public:
    explicit Tracer(const TraceConfig &cfg);

    /** True when `cat` passes the category mask. */
    bool
    enabled(TraceCat cat) const
    {
        return (cfg_.categories & static_cast<std::uint32_t>(cat)) != 0;
    }

    /** Record an instant event at simulated time `ts`. */
    void instant(TraceCat cat, Tick ts, const char *name,
                 const TraceArgs &args = {});

    /** Record a complete span [ts, ts+dur). */
    void span(TraceCat cat, Tick ts, Tick dur, const char *name,
              const TraceArgs &args = {});

    /**
     * Note one access to `vpn` at simulated time `now`: buckets the
     * ledger_page's epoch counter and, when the Access category is on,
     * emits a "page.access" instant.
     */
    void pageAccess(Vpn vpn, Tick now);

    /** Ring-buffer contents, oldest first. */
    const std::deque<TraceEvent> &events() const { return ring_; }

    /** Events admitted to the ring. */
    std::uint64_t emitted() const { return emitted_; }

    /** Events evicted by ring overflow (drop-oldest). */
    std::uint64_t dropped() const { return dropped_; }

    /** Register `telemetry.trace.{emitted,dropped}` counters. */
    void registerStats(StatRegistry &reg) const;

    /** Write the ring as Chrome trace_event JSON. */
    void exportChromeTrace(std::ostream &os) const;

    /** Export to cfg.path (fatal on I/O error; no-op when empty). */
    void save() const;

    /** The lifecycle ledger. */
    const PageLedger &ledger() const { return ledger_; }

    /** The configuration in use. */
    const TraceConfig &config() const { return cfg_; }

  private:
    void record(TraceEvent ev);
    static std::string renderArgs(const std::vector<TraceArg> &args);

    TraceConfig cfg_;
    std::deque<TraceEvent> ring_;
    PageLedger ledger_;
    std::uint64_t emitted_ = 0;
    std::uint64_t dropped_ = 0;
};

/** The Tracer bound to this thread (nullptr = tracing off). */
Tracer *traceCurrent();

/**
 * RAII binding of a Tracer to the current thread for the duration of a
 * TieredSystem::run().  Per-thread (like logSetThreadTag) so parallel
 * sweep workers each trace their own cell — the basis of the 1-vs-N
 * worker byte-identity guarantee.
 */
class TraceBinding
{
  public:
    explicit TraceBinding(Tracer *tracer);
    ~TraceBinding();

    TraceBinding(const TraceBinding &) = delete;
    TraceBinding &operator=(const TraceBinding &) = delete;

  private:
    Tracer *prev_;
};

} // namespace m5

/**
 * Emission macros.  The argument expressions (including the TraceArgs
 * chain) are evaluated only when a Tracer is bound *and* the category is
 * enabled, so disabled tracing costs one thread-local load.  `ts` / `dur`
 * must be simulated Ticks (m5lint: no-wallclock-trace).
 */
#define TRACE_EVENT(cat, ts, name, ...)                                    \
    do {                                                                   \
        if (::m5::Tracer *m5_tr_ = ::m5::traceCurrent();                   \
            m5_tr_ != nullptr && m5_tr_->enabled(cat)) {                   \
            m5_tr_->instant((cat), (ts), (name) __VA_OPT__(, __VA_ARGS__)); \
        }                                                                  \
    } while (0)

#define TRACE_SPAN(cat, ts, dur, name, ...)                                \
    do {                                                                   \
        if (::m5::Tracer *m5_tr_ = ::m5::traceCurrent();                   \
            m5_tr_ != nullptr && m5_tr_->enabled(cat)) {                   \
            m5_tr_->span((cat), (ts), (dur),                               \
                         (name) __VA_OPT__(, __VA_ARGS__));                \
        }                                                                  \
    } while (0)

#define TRACE_PAGE_ACCESS(vpn, now)                                        \
    do {                                                                   \
        if (::m5::Tracer *m5_tr_ = ::m5::traceCurrent();                   \
            m5_tr_ != nullptr) {                                           \
            m5_tr_->pageAccess((vpn), (now));                              \
        }                                                                  \
    } while (0)
