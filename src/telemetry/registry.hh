/**
 * @file
 * StatRegistry: the simulator-wide observability surface.
 *
 * Components register hierarchically named statistics at construction
 * time — counters (`cxl.hpt.observed`), gauges (`m5.monitor.bw_den_ddr`)
 * and histograms (`os.migration.batch_pages`) — and the registry samples
 * them on demand.  Registration stores a *pointer* to the component's own
 * tally (or a closure over it), so the Monitor, the bench reports and the
 * telemetry export all read the very same memory: there is no second set
 * of books to drift out of sync.
 *
 * Naming scheme (docs/TELEMETRY.md): `layer.component.stat`, lower-case
 * `[a-z0-9_.-]`.  Names are unique; a collision is a programming error
 * and fatals.  Iteration is over a std::map, so every consumer sees the
 * stats in the same sorted order on every run — a prerequisite for the
 * byte-identical telemetry guarantee (docs/RUNNER.md).
 */

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace m5 {

/**
 * A histogram over explicit, strictly increasing bucket edges.
 *
 * With edges {e0, .., e(n-1)} there are n+1 buckets: value v lands in the
 * first bucket i with v < e_i, or in the overflow bucket when v >= e(n-1).
 */
class StatHistogram
{
  public:
    explicit StatHistogram(std::vector<std::uint64_t> edges);

    /** Record `weight` observations of `value`. */
    void add(std::uint64_t value, std::uint64_t weight = 1);

    /** Zero all buckets (between experiment phases / sweep cells). */
    void reset();

    /** Bucket edges, as constructed. */
    const std::vector<std::uint64_t> &edges() const { return edges_; }

    /** Per-bucket observation counts (edges().size() + 1 entries). */
    const std::vector<std::uint64_t> &counts() const { return counts_; }

    /** Total observations across all buckets. */
    std::uint64_t total() const { return total_; }

    /**
     * The p-th percentile (0 < p <= 100) as the upper edge of the bucket
     * holding the ceil(p/100 * total)-th observation.  Observations in
     * the overflow bucket report the last edge (the histogram cannot
     * bound them); an empty histogram reports 0.
     */
    std::uint64_t percentile(double p) const;

  private:
    std::vector<std::uint64_t> edges_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/** One sampled statistic (see StatRegistry::sample). */
struct StatSample
{
    enum class Kind { Counter, Gauge, Histogram };

    std::string name;
    Kind kind = Kind::Counter;
    std::uint64_t counter = 0;            //!< Valid for Kind::Counter.
    double gauge = 0.0;                   //!< Valid for Kind::Gauge.
    const StatHistogram *hist = nullptr;  //!< Valid for Kind::Histogram.
};

/** The registry of named statistics. */
class StatRegistry
{
  public:
    /** Register a monotonic counter; `value` must outlive the registry's
     *  last sample() call. */
    void addCounter(const std::string &name, const std::uint64_t *value);

    /** Register a point-in-time gauge, sampled by calling `fn`. */
    void addGauge(const std::string &name, std::function<double()> fn);

    /** Register a histogram; `hist` must outlive sampling. */
    void addHistogram(const std::string &name, const StatHistogram *hist);

    /** True when a statistic with this name is registered. */
    bool has(const std::string &name) const;

    /** Number of registered statistics. */
    std::size_t size() const { return entries_.size(); }

    /** Current value of a registered counter (fatal when absent or not a
     *  counter). */
    std::uint64_t counter(const std::string &name) const;

    /** Sample every statistic, sorted by name. */
    std::vector<StatSample> sample() const;

  private:
    struct Entry
    {
        StatSample::Kind kind = StatSample::Kind::Counter;
        const std::uint64_t *counter = nullptr;
        std::function<double()> gauge;
        const StatHistogram *hist = nullptr;
    };

    void insert(const std::string &name, Entry entry);

    std::map<std::string, Entry> entries_;
};

} // namespace m5
