#include "telemetry/trace.hh"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "common/logging.hh"

namespace m5 {
namespace {

thread_local Tracer *t_bound_tracer = nullptr;

constexpr TraceCat kAllCats[] = {
    TraceCat::Sim,     TraceCat::Monitor, TraceCat::Nominate,
    TraceCat::Elect,   TraceCat::Promote, TraceCat::Migrate,
    TraceCat::Cxl,     TraceCat::Access,
};

/** Minimal JSON string escaping (quotes, backslash, control chars). */
std::string
escapeJson(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            out += strprintf("\\u%04x", static_cast<unsigned>(c));
        } else {
            out += c;
        }
    }
    return out;
}

/** A Tick (ns) as Chrome's microsecond timestamp, exact to the ns. */
std::string
ticksToChromeUs(Tick t)
{
    return strprintf("%llu.%03llu",
                     static_cast<unsigned long long>(t / 1000),
                     static_cast<unsigned long long>(t % 1000));
}

/** One argument value as its JSON fragment (%.17g doubles, like
 *  telemetry). */
std::string
argValueJson(const TraceArg &a)
{
    switch (a.kind) {
      case TraceArg::Kind::U64:
        return std::to_string(a.u);
      case TraceArg::Kind::F64:
        return std::isfinite(a.d) ? strprintf("%.17g", a.d)
                                  : std::string("null");
      case TraceArg::Kind::Str:
        return "\"" + escapeJson(a.s) + "\"";
    }
    m5_panic("unknown TraceArg kind");
}

/** One argument value for ledger text (strings unquoted). */
std::string
argValueText(const TraceArg &a)
{
    switch (a.kind) {
      case TraceArg::Kind::U64:
        return std::to_string(a.u);
      case TraceArg::Kind::F64:
        return std::isfinite(a.d) ? strprintf("%.17g", a.d)
                                  : std::string("nan");
      case TraceArg::Kind::Str:
        return a.s;
    }
    m5_panic("unknown TraceArg kind");
}

/** The ledger's verb for a pipeline event name (empty = not a page
 *  lifecycle stage). */
std::string
ledgerVerb(const std::string &name)
{
    if (name == "nominator.track")
        return "tracked";
    if (name == "nominator.nominate")
        return "nominated";
    if (name == "promoter.accept")
        return "accepted by promoter";
    if (name == "promoter.reject")
        return "rejected by promoter";
    if (name == "migration.promote")
        return "migrated to DDR";
    if (name == "migration.demote")
        return "demoted to CXL";
    if (name == "migration.exchange")
        return "exchanged into the top tier";
    if (name == "migration.exchange_out")
        return "exchanged out of the top tier";
    if (name == "migration.move")
        return "moved between tiers";
    if (name == "migration.reject")
        return "migration rejected";
    return name;
}

} // namespace

std::string
traceCatName(TraceCat cat)
{
    switch (cat) {
      case TraceCat::Sim:
        return "sim";
      case TraceCat::Monitor:
        return "monitor";
      case TraceCat::Nominate:
        return "nominate";
      case TraceCat::Elect:
        return "elect";
      case TraceCat::Promote:
        return "promote";
      case TraceCat::Migrate:
        return "migrate";
      case TraceCat::Cxl:
        return "cxl";
      case TraceCat::Access:
        return "access";
    }
    m5_panic("unknown TraceCat");
}

unsigned
traceCatLane(TraceCat cat)
{
    const auto bits = static_cast<std::uint32_t>(cat);
    unsigned lane = 0;
    for (std::uint32_t b = bits; b > 1; b >>= 1)
        ++lane;
    return lane;
}

std::uint32_t
parseTraceCats(const std::string &csv)
{
    if (csv.empty())
        m5_fatal("empty trace category list");
    std::uint32_t mask = 0;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        const std::size_t comma = csv.find(',', pos);
        const std::string tok = csv.substr(pos,
            comma == std::string::npos ? std::string::npos : comma - pos);
        pos = comma == std::string::npos ? csv.size() + 1 : comma + 1;
        if (tok.empty())
            m5_fatal("empty token in trace category list '%s'", csv.c_str());
        if (tok == "all") {
            mask |= kTraceAllCats;
            continue;
        }
        if (tok == "default") {
            mask |= kTraceDefaultCats;
            continue;
        }
        bool found = false;
        for (TraceCat cat : kAllCats) {
            if (tok == traceCatName(cat)) {
                mask |= static_cast<std::uint32_t>(cat);
                found = true;
                break;
            }
        }
        if (!found) {
            m5_fatal("unknown trace category '%s' "
                     "(want sim|monitor|nominate|elect|promote|migrate|"
                     "cxl|access|default|all)", tok.c_str());
        }
    }
    return mask;
}

PageLedger::PageLedger(const TraceConfig &cfg) : cfg_(cfg)
{
}

void
PageLedger::observePage(Vpn page, Tick ts, const std::string &text)
{
    pages_[page].push_back({ts, next_seq_++, text});
}

void
PageLedger::observeDecision(Tick ts, bool migrate, const std::string &text)
{
    decisions_.push_back({ts, next_seq_++, migrate, text});
}

void
PageLedger::bucketAccess(Vpn page, Tick now)
{
    if (!cfg_.ledger_page || page != *cfg_.ledger_page)
        return;
    const Tick period = cfg_.epoch_period ? cfg_.epoch_period : 1;
    const std::uint64_t epoch = now / period;
    auto [it, inserted] = access_epochs_.try_emplace(epoch);
    if (inserted) {
        it->second.first_ts = epoch * period;
        it->second.seq = next_seq_++;
    }
    ++it->second.count;
}

std::vector<LedgerRecord>
PageLedger::lifecycle(Vpn page) const
{
    std::vector<LedgerRecord> out;

    const auto pit = pages_.find(page);
    if (pit != pages_.end())
        out = pit->second;

    if (cfg_.ledger_page && page == *cfg_.ledger_page) {
        for (const auto &[epoch, bucket] : access_epochs_) {
            out.push_back({bucket.first_ts, bucket.seq,
                           strprintf("epoch %llu: %llu accesses",
                               static_cast<unsigned long long>(epoch),
                               static_cast<unsigned long long>(
                                   bucket.count))});
        }
    }

    // Elector decisions inside the page's active window: from its first
    // pipeline event until it lands in DDR (or its last event).
    if (pit != pages_.end() && !pit->second.empty()) {
        Tick window_start = pit->second.front().ts;
        Tick window_end = pit->second.back().ts;
        for (const LedgerRecord &r : pit->second) {
            window_start = std::min(window_start, r.ts);
            window_end = std::max(window_end, r.ts);
            if (r.text.rfind("migrated to DDR", 0) == 0) {
                window_end = r.ts;
                break;
            }
        }
        for (const Decision &d : decisions_) {
            if (d.ts < window_start || d.ts > window_end)
                continue;
            out.push_back({d.ts, d.seq,
                           (d.migrate ? "elected (" : "deferred (") +
                               d.text + ")"});
        }
    }

    std::sort(out.begin(), out.end(),
        [](const LedgerRecord &a, const LedgerRecord &b) {
            if (a.ts != b.ts)
                return a.ts < b.ts;
            return a.seq < b.seq;
        });
    return out;
}

std::vector<Vpn>
PageLedger::migratedPages() const
{
    std::vector<Vpn> out;
    for (const auto &[page, records] : pages_) {
        for (const LedgerRecord &r : records) {
            if (r.text.rfind("migrated to DDR", 0) == 0 ||
                r.text.rfind("exchanged into the top tier", 0) == 0) {
                out.push_back(page);
                break;
            }
        }
    }
    return out;
}

std::vector<Vpn>
PageLedger::trackedPages() const
{
    std::vector<Vpn> out;
    out.reserve(pages_.size());
    for (const auto &[page, records] : pages_)
        out.push_back(page);
    return out;
}

Tracer::Tracer(const TraceConfig &cfg) : cfg_(cfg), ledger_(cfg_)
{
    m5_assert(cfg_.ring_capacity > 0, "Tracer needs ring capacity > 0");
}

std::string
Tracer::renderArgs(const std::vector<TraceArg> &args)
{
    std::string out;
    for (const TraceArg &a : args) {
        if (a.key == "page")
            continue; // The ledger already keys on the page.
        if (!out.empty())
            out += ", ";
        out += a.key + "=" + argValueText(a);
    }
    return out;
}

void
Tracer::record(TraceEvent ev)
{
    // Feed the ledger before ring admission so overflow never truncates
    // a page's lifecycle.
    if (cfg_.ledger) {
        if (ev.name == "elector.decision") {
            bool migrate = false;
            for (const TraceArg &a : ev.args) {
                if (a.key == "migrate")
                    migrate = a.u != 0;
            }
            ledger_.observeDecision(ev.ts, migrate, renderArgs(ev.args));
        } else if (ev.name == "page.access") {
            // Raw accesses reach the ledger via bucketAccess() only;
            // per-event records would swamp the lifecycle.
        } else {
            for (const TraceArg &a : ev.args) {
                if (a.key != "page" || a.kind != TraceArg::Kind::U64)
                    continue;
                std::string text = ledgerVerb(ev.name);
                const std::string detail = renderArgs(ev.args);
                if (!detail.empty())
                    text += " (" + detail + ")";
                ledger_.observePage(static_cast<Vpn>(a.u), ev.ts, text);
                break;
            }
        }
    }

    ++emitted_;
    if (ring_.size() >= cfg_.ring_capacity) {
        ring_.pop_front();
        ++dropped_;
    }
    ring_.push_back(std::move(ev));
}

void
Tracer::instant(TraceCat cat, Tick ts, const char *name,
                const TraceArgs &args)
{
    TraceEvent ev;
    ev.ts = ts;
    ev.cat = cat;
    ev.ph = 'i';
    ev.name = name;
    ev.args = args.list();
    record(std::move(ev));
}

void
Tracer::span(TraceCat cat, Tick ts, Tick dur, const char *name,
             const TraceArgs &args)
{
    TraceEvent ev;
    ev.ts = ts;
    ev.dur = dur;
    ev.cat = cat;
    ev.ph = 'X';
    ev.name = name;
    ev.args = args.list();
    record(std::move(ev));
}

void
Tracer::pageAccess(Vpn vpn, Tick now)
{
    if (cfg_.ledger)
        ledger_.bucketAccess(vpn, now);
    if (!enabled(TraceCat::Access))
        return;
    if (cfg_.ledger_page && vpn != *cfg_.ledger_page)
        return;
    instant(TraceCat::Access, now, "page.access",
            TraceArgs().u("page", vpn));
}

void
Tracer::registerStats(StatRegistry &reg) const
{
    reg.addCounter("telemetry.trace.emitted", &emitted_);
    reg.addCounter("telemetry.trace.dropped", &dropped_);
}

void
Tracer::exportChromeTrace(std::ostream &os) const
{
    os << "{\"traceEvents\":[";
    bool first = true;
    const auto emit = [&](const std::string &obj) {
        if (!first)
            os << ",";
        first = false;
        os << "\n" << obj;
    };

    emit("{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"m5sim\"}}");
    for (TraceCat cat : kAllCats) {
        emit(strprintf("{\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
                       "\"name\":\"thread_name\","
                       "\"args\":{\"name\":\"%s\"}}",
                       traceCatLane(cat), traceCatName(cat).c_str()));
    }

    for (const TraceEvent &ev : ring_) {
        std::string obj = strprintf(
            "{\"ph\":\"%c\",\"pid\":1,\"tid\":%u,\"ts\":%s,",
            ev.ph, traceCatLane(ev.cat), ticksToChromeUs(ev.ts).c_str());
        if (ev.ph == 'X')
            obj += "\"dur\":" + ticksToChromeUs(ev.dur) + ",";
        if (ev.ph == 'i')
            obj += "\"s\":\"t\",";
        obj += "\"cat\":\"" + traceCatName(ev.cat) + "\",";
        obj += "\"name\":\"" + escapeJson(ev.name) + "\",\"args\":{";
        bool first_arg = true;
        for (const TraceArg &a : ev.args) {
            if (!first_arg)
                obj += ",";
            first_arg = false;
            obj += "\"" + escapeJson(a.key) + "\":" + argValueJson(a);
        }
        obj += "}}";
        emit(obj);
    }
    os << "\n]}\n";
}

void
Tracer::save() const
{
    if (cfg_.path.empty())
        return;
    std::ofstream out(cfg_.path, std::ios::out | std::ios::trunc);
    if (!out)
        m5_fatal("cannot open trace file '%s'", cfg_.path.c_str());
    exportChromeTrace(out);
    out.flush();
    if (!out)
        m5_fatal("error writing trace file '%s'", cfg_.path.c_str());
}

Tracer *
traceCurrent()
{
    return t_bound_tracer;
}

TraceBinding::TraceBinding(Tracer *tracer) : prev_(t_bound_tracer)
{
    t_bound_tracer = tracer;
}

TraceBinding::~TraceBinding()
{
    t_bound_tracer = prev_;
}

} // namespace m5
