#include "telemetry/snapshot.hh"

#include <cmath>

#include "common/logging.hh"

namespace m5 {

EpochSnapshotter::EpochSnapshotter(const StatRegistry &reg,
                                   const TelemetryConfig &cfg)
    : reg_(reg), cfg_(cfg)
{
    m5_assert(!cfg_.path.empty(), "EpochSnapshotter needs an output path");
    if (cfg_.every == 0)
        cfg_.every = 1;
    out_.open(cfg_.path, std::ios::out | std::ios::trunc);
    if (!out_)
        m5_fatal("cannot open telemetry file '%s'", cfg_.path.c_str());
}

std::string
EpochSnapshotter::formatValue(const StatSample &s)
{
    switch (s.kind) {
      case StatSample::Kind::Counter:
        return std::to_string(s.counter);
      case StatSample::Kind::Gauge:
        // %.17g round-trips doubles exactly (the runner's CSV
        // convention); non-finite values are not valid JSON.
        return std::isfinite(s.gauge) ? strprintf("%.17g", s.gauge)
                                      : std::string("null");
      case StatSample::Kind::Histogram: {
        std::string v = "{\"edges\":[";
        const auto &edges = s.hist->edges();
        for (std::size_t i = 0; i < edges.size(); ++i)
            v += (i ? "," : "") + std::to_string(edges[i]);
        v += "],\"counts\":[";
        const auto &counts = s.hist->counts();
        for (std::size_t i = 0; i < counts.size(); ++i)
            v += (i ? "," : "") + std::to_string(counts[i]);
        v += "],\"total\":" + std::to_string(s.hist->total());
        v += ",\"p50\":" + std::to_string(s.hist->percentile(50.0));
        v += ",\"p90\":" + std::to_string(s.hist->percentile(90.0));
        v += ",\"p99\":" + std::to_string(s.hist->percentile(99.0));
        v += "}";
        return v;
      }
    }
    m5_panic("unknown StatSample kind");
}

void
EpochSnapshotter::writeLine(Tick now)
{
    out_ << "{\"epoch\":" << epoch_index_ << ",\"time_ns\":" << now
         << ",\"stats\":{";
    bool first = true;
    for (const StatSample &s : reg_.sample()) {
        if (!first)
            out_ << ",";
        first = false;
        out_ << "\"" << s.name << "\":" << formatValue(s);
    }
    out_ << "}}\n";
    ++lines_written_;
}

void
EpochSnapshotter::epoch(Tick now)
{
    if (epoch_index_ % cfg_.every == 0)
        writeLine(now);
    ++epoch_index_;
}

void
EpochSnapshotter::finish(Tick now)
{
    writeLine(now);
    ++epoch_index_;
    out_.flush();
}

TextTable
EpochSnapshotter::rollupTable() const
{
    // Histogram rows get percentile columns; the value column keeps the
    // full JSON fragment so the rollup still byte-matches the final JSONL
    // line field for field (tools/telemetry_smoke.sh).
    TextTable table({"stat", "value", "p50", "p90", "p99"});
    for (const StatSample &s : reg_.sample()) {
        if (s.kind == StatSample::Kind::Histogram) {
            table.addRow({s.name, formatValue(s),
                          std::to_string(s.hist->percentile(50.0)),
                          std::to_string(s.hist->percentile(90.0)),
                          std::to_string(s.hist->percentile(99.0))});
        } else {
            table.addRow({s.name, formatValue(s), "-", "-", "-"});
        }
    }
    return table;
}

} // namespace m5
