#include "telemetry/prof.hh"

#include <algorithm>
#include <chrono>
#include <fstream>

#include "common/logging.hh"

namespace m5 {
namespace {

thread_local ProfThreadState *t_prof_state = nullptr;

/** Sum `src` into `dst`, recursing over children by name. */
void
mergeInto(ProfNode &dst, const ProfNode &src)
{
    dst.self_ns += src.self_ns;
    dst.total_ns += src.total_ns;
    dst.calls += src.calls;
    for (const auto &[name, child] : src.children) {
        auto &slot = dst.children[name];
        if (!slot)
            slot = std::make_unique<ProfNode>();
        mergeInto(*slot, *child);
    }
}

/** Depth-first flatten, children in (deterministic) name order. */
void
flatten(const ProfNode &node, const std::string &prefix, unsigned depth,
        std::vector<ProfEntry> &out)
{
    for (const auto &[name, child] : node.children) {
        ProfEntry e;
        e.path = prefix.empty() ? name : prefix + ";" + name;
        e.depth = depth;
        e.self_ns = child->self_ns;
        e.total_ns = child->total_ns;
        e.calls = child->calls;
        out.push_back(e);
        // Recurse on the local copy of the path: `out` reallocates as
        // it grows, so a reference into it would dangle.
        flatten(*child, e.path, depth + 1, out);
    }
}

} // namespace

std::uint64_t
ProfClock::nowNs()
{
    // The one sanctioned steady_clock read in the tree: host time never
    // leaves this module except through the profile artifacts.
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

ProfThreadState::ProfThreadState(const Profiler &owner)
    : owner_(owner)
{
    // The virtual root frame: depth-0 scopes are its children.  Its
    // timestamps are never read, so zeros are fine.
    stack_.push_back({&root_, 0, 0});
}

ProfNode *
ProfThreadState::child(const char *name)
{
    auto &slot = stack_.back().node->children[name];
    if (!slot)
        slot = std::make_unique<ProfNode>();
    return slot.get();
}

void
ProfThreadState::enter(const char *name)
{
    ProfNode *node = child(name);
    stack_.push_back({node, owner_.nowNs(), 0});
}

void
ProfThreadState::exit()
{
    m5_assert(stack_.size() > 1, "PROF_SCOPE exit without matching enter");
    const Frame f = stack_.back();
    stack_.pop_back();
    const std::uint64_t now = owner_.nowNs();
    const std::uint64_t elapsed = now >= f.start_ns ? now - f.start_ns : 0;
    const std::uint64_t self =
        elapsed >= f.child_ns ? elapsed - f.child_ns : 0;
    f.node->self_ns += self;
    f.node->total_ns += elapsed;
    f.node->calls += 1;
    stack_.back().child_ns += elapsed;
}

void
ProfThreadState::mark(const char *name)
{
    child(name)->calls += 1;
}

Profiler::Profiler(ProfConfig cfg)
    : cfg_(std::move(cfg))
{
}

std::uint64_t
Profiler::nowNs() const
{
    return cfg_.clock ? cfg_.clock() : ProfClock::nowNs();
}

ProfThreadState *
Profiler::bindThread()
{
    std::lock_guard<std::mutex> lock(mutex_);
    states_.push_back(std::make_unique<ProfThreadState>(*this));
    return states_.back().get();
}

ProfNode
Profiler::merged() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    ProfNode out;
    for (const auto &state : states_)
        mergeInto(out, state->root());
    return out;
}

std::vector<ProfEntry>
Profiler::entries() const
{
    const ProfNode root = merged();
    std::vector<ProfEntry> out;
    flatten(root, "", 0, out);
    return out;
}

std::vector<ProfEntry>
Profiler::rollup(std::size_t n) const
{
    std::vector<ProfEntry> all = entries();
    std::sort(all.begin(), all.end(),
              [](const ProfEntry &a, const ProfEntry &b) {
                  if (a.self_ns != b.self_ns)
                      return a.self_ns > b.self_ns;
                  return a.path < b.path;
              });
    if (all.size() > n)
        all.resize(n);
    return all;
}

std::uint64_t
Profiler::wallNs() const
{
    std::uint64_t wall = 0;
    for (const auto &e : entries())
        if (e.depth == 0)
            wall += e.total_ns;
    return wall;
}

std::size_t
Profiler::scopeCount() const
{
    return entries().size();
}

void
Profiler::exportJson(std::ostream &os) const
{
    // One node object per line, deterministic depth-first order: the
    // m5prof parser and the format pin in tests/test_prof.cc rely on
    // this exact shape (docs/PROFILING.md).
    const std::vector<ProfEntry> all = entries();
    os << "{\n";
    os << "  \"version\": 1,\n";
    os << "  \"wall_ns\": " << wallNs() << ",\n";
    os << "  \"scopes\": " << all.size() << ",\n";
    os << "  \"nodes\": [\n";
    for (std::size_t i = 0; i < all.size(); ++i) {
        const ProfEntry &e = all[i];
        os << "    {\"path\": \"" << e.path << "\", \"depth\": " << e.depth
           << ", \"self_ns\": " << e.self_ns
           << ", \"total_ns\": " << e.total_ns
           << ", \"calls\": " << e.calls << "}"
           << (i + 1 < all.size() ? "," : "") << "\n";
    }
    os << "  ]\n";
    os << "}\n";
}

void
Profiler::exportFolded(std::ostream &os) const
{
    // Collapsed-stack lines weighted by self time; zero-self nodes
    // (pure parents, untimed marks) carry no flame area and are
    // omitted, as flamegraph.pl expects.
    for (const auto &e : entries())
        if (e.self_ns > 0)
            os << e.path << " " << e.self_ns << "\n";
}

void
Profiler::save() const
{
    if (cfg_.base.empty())
        return;
    const std::string json_path = cfg_.base + ".prof.json";
    std::ofstream json(json_path, std::ios::trunc);
    if (!json)
        m5_fatal("cannot open profile output '%s'", json_path.c_str());
    exportJson(json);
    const std::string folded_path = cfg_.base + ".folded";
    std::ofstream folded(folded_path, std::ios::trunc);
    if (!folded)
        m5_fatal("cannot open flamegraph output '%s'",
                 folded_path.c_str());
    exportFolded(folded);
}

ProfThreadState *
profCurrent()
{
    return t_prof_state;
}

ProfBinding::ProfBinding(Profiler *prof)
    : prev_(t_prof_state)
{
    t_prof_state = prof ? prof->bindThread() : nullptr;
}

ProfBinding::~ProfBinding()
{
    t_prof_state = prev_;
}

} // namespace m5
