#include "cxl/hwt.hh"

#include "telemetry/prof.hh"

namespace m5 {

HwtUnit::HwtUnit(const TrackerConfig &cfg)
    : tracker_(makeTracker(cfg))
{
}

std::vector<TopKEntry>
HwtUnit::queryAndReset()
{
    PROF_SCOPE("cxl.hwt.query");
    auto top = tracker_->query();
    tracker_->reset();
    observed_ = 0;
    ++queries_;
    return top;
}

void
HwtUnit::registerStats(StatRegistry &reg) const
{
    reg.addCounter("cxl.hwt.observed", &observed_total_);
    reg.addCounter("cxl.hwt.queries", &queries_);
}

} // namespace m5
