#include "cxl/hwt.hh"

namespace m5 {

HwtUnit::HwtUnit(const TrackerConfig &cfg)
    : tracker_(makeTracker(cfg))
{
}

std::vector<TopKEntry>
HwtUnit::queryAndReset()
{
    auto top = tracker_->query();
    tracker_->reset();
    observed_ = 0;
    return top;
}

} // namespace m5
