/**
 * @file
 * The CXL controller's near-memory observation point (Figures 1-2).
 *
 * The controller sits between the CXL IP and the device memory controllers
 * and snoops every access address.  It hosts the user-defined AFU blocks:
 * PAC/WAC (offline profiling) and HPT/HWT (online top-K tracking).  Attach
 * CxlController::observer() to the CXL tier of a MemorySystem.
 */

#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/types.hh"
#include "cxl/hpt.hh"
#include "cxl/hwt.hh"
#include "cxl/pac.hh"
#include "cxl/wac.hh"
#include "mem/memsys.hh"

namespace m5 {

/** Which AFU units to instantiate. */
struct CxlControllerConfig
{
    std::optional<PacConfig> pac;
    std::optional<WacConfig> wac;
    std::optional<TrackerConfig> hpt;
    std::optional<TrackerConfig> hwt;
};

/** The CXL device controller with its profiling / tracking AFUs. */
class CxlController
{
  public:
    explicit CxlController(const CxlControllerConfig &cfg);

    /** Snoop one access (wire this into the memory system). */
    void observe(Addr pa, bool is_write, Tick now);

    /** An observer closure suitable for MemorySystem::attachObserver. */
    MemObserver observer();

    /** @{ Unit accessors; panic if the unit was not configured. */
    PacUnit &pac();
    WacUnit &wac();
    HptUnit &hpt();
    HwtUnit &hwt();
    /** @} */

    /** @{ Presence checks. */
    bool hasPac() const { return pac_ != nullptr; }
    bool hasWac() const { return wac_ != nullptr; }
    bool hasHpt() const { return hpt_ != nullptr; }
    bool hasHwt() const { return hwt_ != nullptr; }
    /** @} */

    /** Total accesses the controller has snooped. */
    std::uint64_t snooped() const { return snooped_; }

    /** An MMIO snapshot query timed out / arrived stale (the manager
     *  reports these under fault injection, docs/FAULTS.md). */
    void noteMmioTimeout() { ++mmio_timeouts_; }

    /** Stale / timed-out MMIO queries reported so far. */
    std::uint64_t mmioTimeouts() const { return mmio_timeouts_; }

    /**
     * Arm per-tenant attribution (multi-tenant colocation,
     * docs/MULTITENANT.md): every snooped access is charged to
     * `resolve(pfn)`'s PAC-style read/write counters, plus a WAC-window
     * counter when the WAC would have counted the word.  The resolver
     * returns kNoTenant for frames not mapped to any tenant (e.g. a
     * frame mid-migration); those stay unattributed.  Must precede
     * registerStats — the `tenant.<id>.cxl.*` rows only exist for
     * attributed runs, keeping single-tenant telemetry byte-identical.
     */
    void attachTenantAttribution(std::size_t tenants,
                                 std::function<TenantId(Pfn)> resolve);

    /** True when per-tenant attribution is armed. */
    bool tenantAttributionActive() const { return !tenant_reads_.empty(); }

    /** @{ Per-tenant attributed counters (zero-filled until attach). */
    std::uint64_t tenantReads(TenantId t) const { return tenant_reads_[t]; }
    std::uint64_t tenantWrites(TenantId t) const
    {
        return tenant_writes_[t];
    }
    std::uint64_t tenantWacObserved(TenantId t) const
    {
        return tenant_wac_observed_[t];
    }
    /** @} */

    /**
     * Register `cxl.ctrl.snooped` plus every configured unit's stats;
     * the MMIO timeout counter only under fault injection.
     */
    void registerStats(StatRegistry &reg, bool faults_active = false) const;

  private:
    std::unique_ptr<PacUnit> pac_;
    std::unique_ptr<WacUnit> wac_;
    std::unique_ptr<HptUnit> hpt_;
    std::unique_ptr<HwtUnit> hwt_;
    std::uint64_t snooped_ = 0;
    std::uint64_t mmio_timeouts_ = 0;
    //! Per-tenant attribution state; empty until attachTenantAttribution.
    std::function<TenantId(Pfn)> tenant_resolve_;
    std::vector<std::uint64_t> tenant_reads_;
    std::vector<std::uint64_t> tenant_writes_;
    std::vector<std::uint64_t> tenant_wac_observed_;
};

} // namespace m5
