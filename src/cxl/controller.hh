/**
 * @file
 * The CXL controller's near-memory observation point (Figures 1-2).
 *
 * The controller sits between the CXL IP and the device memory controllers
 * and snoops every access address.  It hosts the user-defined AFU blocks:
 * PAC/WAC (offline profiling) and HPT/HWT (online top-K tracking).  Attach
 * CxlController::observer() to the CXL tier of a MemorySystem.
 */

#pragma once

#include <memory>
#include <optional>

#include "common/types.hh"
#include "cxl/hpt.hh"
#include "cxl/hwt.hh"
#include "cxl/pac.hh"
#include "cxl/wac.hh"
#include "mem/memsys.hh"

namespace m5 {

/** Which AFU units to instantiate. */
struct CxlControllerConfig
{
    std::optional<PacConfig> pac;
    std::optional<WacConfig> wac;
    std::optional<TrackerConfig> hpt;
    std::optional<TrackerConfig> hwt;
};

/** The CXL device controller with its profiling / tracking AFUs. */
class CxlController
{
  public:
    explicit CxlController(const CxlControllerConfig &cfg);

    /** Snoop one access (wire this into the memory system). */
    void observe(Addr pa, bool is_write, Tick now);

    /** An observer closure suitable for MemorySystem::attachObserver. */
    MemObserver observer();

    /** @{ Unit accessors; panic if the unit was not configured. */
    PacUnit &pac();
    WacUnit &wac();
    HptUnit &hpt();
    HwtUnit &hwt();
    /** @} */

    /** @{ Presence checks. */
    bool hasPac() const { return pac_ != nullptr; }
    bool hasWac() const { return wac_ != nullptr; }
    bool hasHpt() const { return hpt_ != nullptr; }
    bool hasHwt() const { return hwt_ != nullptr; }
    /** @} */

    /** Total accesses the controller has snooped. */
    std::uint64_t snooped() const { return snooped_; }

    /** An MMIO snapshot query timed out / arrived stale (the manager
     *  reports these under fault injection, docs/FAULTS.md). */
    void noteMmioTimeout() { ++mmio_timeouts_; }

    /** Stale / timed-out MMIO queries reported so far. */
    std::uint64_t mmioTimeouts() const { return mmio_timeouts_; }

    /**
     * Register `cxl.ctrl.snooped` plus every configured unit's stats;
     * the MMIO timeout counter only under fault injection.
     */
    void registerStats(StatRegistry &reg, bool faults_active = false) const;

  private:
    std::unique_ptr<PacUnit> pac_;
    std::unique_ptr<WacUnit> wac_;
    std::unique_ptr<HptUnit> hpt_;
    std::unique_ptr<HwtUnit> hwt_;
    std::uint64_t snooped_ = 0;
    std::uint64_t mmio_timeouts_ = 0;
};

} // namespace m5
