/**
 * @file
 * The MMIO window through which PAC/WAC software reads access counts
 * (§3, Software).
 *
 * The device exposes a 2MB MMIO region: 1MB maps a movable window of the
 * SRAM unit, 1MB maps configuration/control registers.  Because the SRAM
 * holds 4MB of counters, software programs a base-address configuration
 * register and reads the counters window by window.  The model charges a
 * per-read CXL.io cost and counts window switches, so profiling software
 * overhead (e.g. "hundreds of milliseconds to read 2M counters", §5.1)
 * is reproducible.
 */

#pragma once

#include <cstdint>
#include <functional>

#include "common/types.hh"

namespace m5 {

/** MMIO window geometry and access costs. */
struct MmioConfig
{
    std::uint64_t window_bytes = 1ULL << 20; //!< Counter window (1MB).
    std::uint64_t counter_bytes = 2;         //!< SRAM counter width (L/8).
    Tick read_latency = 900;   //!< One CXL.io MMIO read round trip.
    Tick config_write_latency = 1000; //!< Base-register update.
};

/** Windowed MMIO access to a linear array of device counters. */
class MmioWindow
{
  public:
    /** Reader callback: fetch the raw counter at linear index i. */
    using CounterReader = std::function<std::uint64_t(std::size_t)>;

    /**
     * @param cfg Geometry and costs.
     * @param num_counters Counters behind the window.
     * @param reader Backing counter source (e.g. PAC's SRAM).
     */
    MmioWindow(const MmioConfig &cfg, std::size_t num_counters,
               CounterReader reader);

    /**
     * Read counter i the way software does: program the base register if
     * i falls outside the current window, then read through the window.
     *
     * @param[out] elapsed Accumulates the MMIO time spent.
     */
    std::uint64_t read(std::size_t i, Tick &elapsed);

    /**
     * Read all counters into out (the §5.1 "fetch all access counts"
     * operation).
     * @return The total MMIO time.
     */
    Tick readAll(std::vector<std::uint64_t> &out);

    /** Counters per window position. */
    std::size_t countersPerWindow() const { return per_window_; }

    /** Window repositioning operations so far. */
    std::uint64_t windowSwitches() const { return switches_; }

    /** MMIO reads so far. */
    std::uint64_t reads() const { return reads_; }

  private:
    MmioConfig cfg_;
    std::size_t num_counters_;
    std::size_t per_window_;
    CounterReader reader_;
    std::size_t window_base_ = 0;
    bool window_valid_ = false;
    std::uint64_t switches_ = 0;
    std::uint64_t reads_ = 0;
};

} // namespace m5
