#include "cxl/pac.hh"

#include <algorithm>

#include "common/logging.hh"

namespace m5 {

PacUnit::PacUnit(const PacConfig &cfg)
    : cfg_(cfg),
      sat_((cfg.counter_bits >= 16 ? 0xffffULL
                                   : (1ULL << cfg.counter_bits) - 1)),
      sram_(cfg.frames, 0),
      table_(cfg.frames, 0)
{
    m5_assert(cfg.frames > 0, "PAC needs a non-empty frame range");
    m5_assert(cfg.counter_bits >= 1 && cfg.counter_bits <= 16,
              "PAC SRAM counters are 1..16 bits");
}

void
PacUnit::observe(Addr pa)
{
    const Pfn pfn = pfnOf(pa);
    if (!inRange(pfn))
        return;
    const std::size_t idx = pfn - cfg_.first_pfn;
    ++total_;
    if (++sram_[idx] >= sat_) {
        // D2D accumulate-and-reset into the 64-bit table.
        table_[idx] += sram_[idx];
        sram_[idx] = 0;
        ++spills_;
    }
}

std::uint64_t
PacUnit::count(Pfn pfn) const
{
    if (!inRange(pfn))
        return 0;
    const std::size_t idx = pfn - cfg_.first_pfn;
    return table_[idx] + sram_[idx];
}

std::vector<TopKEntry>
PacUnit::topK(std::size_t k) const
{
    std::vector<TopKEntry> all;
    for (std::size_t i = 0; i < cfg_.frames; ++i) {
        const std::uint64_t c = table_[i] + sram_[i];
        if (c)
            all.push_back({cfg_.first_pfn + i, c});
    }
    std::sort(all.begin(), all.end(),
        [](const TopKEntry &a, const TopKEntry &b) {
            if (a.count != b.count)
                return a.count > b.count;
            return a.tag < b.tag;
        });
    if (all.size() > k)
        all.resize(k);
    return all;
}

std::uint64_t
PacUnit::topKAccessSum(std::size_t k) const
{
    std::uint64_t sum = 0;
    for (const auto &e : topK(k))
        sum += e.count;
    return sum;
}

std::vector<std::uint64_t>
PacUnit::nonZeroCounts() const
{
    std::vector<std::uint64_t> out;
    for (std::size_t i = 0; i < cfg_.frames; ++i) {
        const std::uint64_t c = table_[i] + sram_[i];
        if (c)
            out.push_back(c);
    }
    return out;
}

void
PacUnit::reset()
{
    std::fill(sram_.begin(), sram_.end(), 0);
    std::fill(table_.begin(), table_.end(), 0);
    total_ = 0;
    spills_ = 0;
}

void
PacUnit::registerStats(StatRegistry &reg) const
{
    reg.addCounter("cxl.pac.accesses", &total_);
    reg.addCounter("cxl.pac.spills", &spills_);
}

} // namespace m5
