/**
 * @file
 * Hot-Word Tracker (HWT) — §5.1.
 *
 * Same architecture as HPT but keyed by 64B word addresses (PA[47:6]); the
 * hot-word addresses feed the Nominator's _HWA structure, which maps them
 * back to PFNs and per-page word masks (§5.2).
 */

#pragma once

#include <memory>
#include <vector>

#include "common/types.hh"
#include "sketch/topk_tracker.hh"
#include "telemetry/registry.hh"
#include "telemetry/trace.hh"

namespace m5 {

/** Top-K hot-word tracking in the CXL controller. */
class HwtUnit
{
  public:
    /** @param cfg Tracker algorithm and geometry. */
    explicit HwtUnit(const TrackerConfig &cfg);

    /** Snoop one access address at simulated time `now`. */
    void
    observe(Addr pa, Tick now = 0)
    {
        const TopKDelta delta = tracker_->access(wordOf(pa));
        ++observed_;
        ++observed_total_;
        if (delta.inserted) {
            TRACE_EVENT(TraceCat::Cxl, now, "hwt.insert",
                        TraceArgs().u("word", wordOf(pa)));
        }
        if (delta.evicted) {
            TRACE_EVENT(TraceCat::Cxl, now, "hwt.evict",
                        TraceArgs().u("word", delta.evicted_tag));
        }
    }

    /** Serve a query and reset for the next epoch. */
    std::vector<TopKEntry> queryAndReset();

    /** Peek without resetting (tests). */
    std::vector<TopKEntry> peek() const { return tracker_->query(); }

    /** Accesses observed since the last reset. */
    std::uint64_t observed() const { return observed_; }

    /** Cumulative accesses observed (never reset). */
    std::uint64_t observedTotal() const { return observed_total_; }

    /** Queries served so far. */
    std::uint64_t queries() const { return queries_; }

    /** Register cumulative counters as `cxl.hwt.*` telemetry. */
    void registerStats(StatRegistry &reg) const;

    /** Underlying tracker (ablations). */
    const TopKTracker &tracker() const { return *tracker_; }

  private:
    std::unique_ptr<TopKTracker> tracker_;
    std::uint64_t observed_ = 0;
    std::uint64_t observed_total_ = 0;
    std::uint64_t queries_ = 0;
};

} // namespace m5
