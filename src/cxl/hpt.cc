#include "cxl/hpt.hh"

namespace m5 {

HptUnit::HptUnit(const TrackerConfig &cfg)
    : tracker_(makeTracker(cfg))
{
}

std::vector<TopKEntry>
HptUnit::queryAndReset()
{
    auto top = tracker_->query();
    tracker_->reset();
    observed_ = 0;
    return top;
}

} // namespace m5
