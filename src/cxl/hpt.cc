#include "cxl/hpt.hh"

#include "telemetry/prof.hh"

namespace m5 {

HptUnit::HptUnit(const TrackerConfig &cfg)
    : tracker_(makeTracker(cfg))
{
}

std::vector<TopKEntry>
HptUnit::queryAndReset()
{
    PROF_SCOPE("cxl.hpt.query");
    auto top = tracker_->query();
    tracker_->reset();
    observed_ = 0;
    ++queries_;
    return top;
}

void
HptUnit::registerStats(StatRegistry &reg) const
{
    reg.addCounter("cxl.hpt.observed", &observed_total_);
    reg.addCounter("cxl.hpt.queries", &queries_);
}

} // namespace m5
