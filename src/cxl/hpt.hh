/**
 * @file
 * Hot-Page Tracker (HPT) — §5.1.
 *
 * HPT applies a top-K tracker (CM-Sketch + sorted CAM, or Space-Saving) to
 * the page frame numbers of every post-LLC CXL access.  The M5-manager
 * queries the top-K over MMIO; both sketch and CAM reset after a query so
 * each epoch tracks a fresh interval.
 */

#pragma once

#include <memory>
#include <vector>

#include "common/types.hh"
#include "sketch/topk_tracker.hh"
#include "telemetry/registry.hh"
#include "telemetry/trace.hh"

namespace m5 {

/** Top-K hot-page tracking in the CXL controller. */
class HptUnit
{
  public:
    /** @param cfg Tracker algorithm and geometry. */
    explicit HptUnit(const TrackerConfig &cfg);

    /** Snoop one access address at simulated time `now`. */
    void
    observe(Addr pa, Tick now = 0)
    {
        const TopKDelta delta = tracker_->access(pfnOf(pa));
        ++observed_;
        ++observed_total_;
        if (delta.inserted) {
            TRACE_EVENT(TraceCat::Cxl, now, "hpt.insert",
                        TraceArgs().u("pfn", pfnOf(pa)));
        }
        if (delta.evicted) {
            TRACE_EVENT(TraceCat::Cxl, now, "hpt.evict",
                        TraceArgs().u("pfn", delta.evicted_tag));
        }
    }

    /**
     * Serve an M5-manager query: return the current top-K hot PFNs and
     * reset for the next epoch (§5.1, "reset immediately after the query
     * is served").
     */
    std::vector<TopKEntry> queryAndReset();

    /** Peek without resetting (tests). */
    std::vector<TopKEntry> peek() const { return tracker_->query(); }

    /** Accesses observed since the last reset. */
    std::uint64_t observed() const { return observed_; }

    /** Cumulative accesses observed (never reset). */
    std::uint64_t observedTotal() const { return observed_total_; }

    /** Queries served so far. */
    std::uint64_t queries() const { return queries_; }

    /** Register cumulative counters as `cxl.hpt.*` telemetry. */
    void registerStats(StatRegistry &reg) const;

    /** Underlying tracker (ablations). */
    const TopKTracker &tracker() const { return *tracker_; }

  private:
    std::unique_ptr<TopKTracker> tracker_;
    std::uint64_t observed_ = 0;
    std::uint64_t observed_total_ = 0;
    std::uint64_t queries_ = 0;
};

} // namespace m5
