/**
 * @file
 * Page Access Counter (PAC) — §3.
 *
 * PAC snoops every post-LLC access address travelling from the CXL IP to
 * the device memory controllers and counts accesses per 4KB page frame.
 * The hardware keeps an L-bit saturating SRAM counter per frame; when a
 * counter saturates it is accumulated into a 64-bit entry of the
 * access-count table in device memory via a D2D write, then reset.  The
 * host reads final counts through an MMIO window after the run.
 *
 * PAC is the ground-truth profiler: Figures 3, 8 and 10 are computed from
 * its access-count table.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "sketch/sorted_topk.hh"
#include "telemetry/registry.hh"

namespace m5 {

/** PAC geometry. */
struct PacConfig
{
    Pfn first_pfn = 0;            //!< First monitored frame.
    std::size_t frames = 0;       //!< Monitored frame count.
    unsigned counter_bits = 16;   //!< SRAM counter width L.
};

/** Exact per-page access counting in the CXL controller. */
class PacUnit
{
  public:
    explicit PacUnit(const PacConfig &cfg);

    /** Snoop one access; addresses outside the range are ignored. */
    void observe(Addr pa);

    /** Exact access count of a frame (SRAM + spilled table). */
    std::uint64_t count(Pfn pfn) const;

    /** Total observed accesses. */
    std::uint64_t totalAccesses() const { return total_; }

    /**
     * The top-k hottest frames by exact count (the §4.1 S5 query).
     * Frames with zero accesses are never reported.
     */
    std::vector<TopKEntry> topK(std::size_t k) const;

    /** Sum of the counts of the top-k frames (top_k_access_count, §4.1). */
    std::uint64_t topKAccessSum(std::size_t k) const;

    /** All non-zero counts (for CDFs, Figure 10). */
    std::vector<std::uint64_t> nonZeroCounts() const;

    /** Number of counters that spilled to the 64-bit table at least once. */
    std::uint64_t spills() const { return spills_; }

    /** First monitored frame. */
    Pfn firstPfn() const { return cfg_.first_pfn; }

    /** Monitored frame count. */
    std::size_t frames() const { return cfg_.frames; }

    /** Zero all counters. */
    void reset();

    /** Register access/spill counters as `cxl.pac.*` telemetry. */
    void registerStats(StatRegistry &reg) const;

  private:
    bool
    inRange(Pfn pfn) const
    {
        return pfn >= cfg_.first_pfn && pfn < cfg_.first_pfn + cfg_.frames;
    }

    PacConfig cfg_;
    std::uint64_t sat_;                  //!< SRAM saturation value.
    std::vector<std::uint16_t> sram_;    //!< L-bit counters (L <= 16).
    std::vector<std::uint64_t> table_;   //!< 64-bit access-count table.
    std::uint64_t total_ = 0;
    std::uint64_t spills_ = 0;
};

} // namespace m5
