/**
 * @file
 * Word Access Counter (WAC) — §3.
 *
 * WAC counts accesses per 64B word with 4-bit saturating SRAM counters.
 * Because per-word state is large, the hardware monitors one 128MB region
 * at a time (§3 Scalability); software sweeps the window over the CXL
 * range across intervals.  When a window is folded, the per-page set of
 * touched words is accumulated into a 64-bit mask per frame — the data
 * behind Figure 4's sparsity analysis and the HWT-driven Nominator.
 */

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "telemetry/registry.hh"

namespace m5 {

/** WAC geometry. */
struct WacConfig
{
    Addr range_base = 0;            //!< First byte of the swept CXL range.
    std::uint64_t range_bytes = 0;  //!< Total range covered by sweeping.
    std::uint64_t window_bytes = 128ULL << 20; //!< Monitored at a time.
    unsigned counter_bits = 4;      //!< Per-word SRAM counter width.
};

/** Word-granularity access counting over a sliding window. */
class WacUnit
{
  public:
    explicit WacUnit(const WacConfig &cfg);

    /** Snoop one access; addresses outside the window are ignored. */
    void observe(Addr pa);

    /** Fold the current window into the per-page masks and advance to the
     *  next window (wrapping around the range). */
    void advanceWindow();

    /** Fold the current window without advancing (end of run). */
    void fold();

    /** Number of distinct 64B words ever observed in a frame (0..64). */
    unsigned uniqueWords(Pfn pfn) const;

    /** Accumulated 64-bit touched-word mask of a frame. */
    std::uint64_t wordMask(Pfn pfn) const;

    /** Count of a word in the *current* window (0 if outside). */
    std::uint64_t wordCount(WordAddr word) const;

    /**
     * All frames with a non-empty mask, with their unique-word counts.
     *
     * @param min_touches Only include pages with at least this many
     *        (saturating) word touches accumulated — at scaled access
     *        budgets, under-sampled cold pages would otherwise read as
     *        artificially sparse.
     */
    std::vector<std::pair<Pfn, unsigned>>
    pagesWithUniqueWords(std::uint64_t min_touches = 0) const;

    /** Accumulated (4-bit-saturating) touch count of a frame. */
    std::uint64_t touches(Pfn pfn) const;

    /** Current window base address. */
    Addr windowBase() const { return win_base_; }

    /** True when the address falls inside the current window (i.e.
     *  observe(pa) would count it) — per-tenant WAC attribution asks
     *  this without disturbing the counters. */
    bool
    inWindow(Addr pa) const
    {
        return pa >= win_base_ &&
               pa < win_base_ + counters_.size() * kWordBytes;
    }

    /** In-window accesses observed across all windows. */
    std::uint64_t observed() const { return observed_; }

    /** Window folds performed (advanceWindow and end-of-run fold). */
    std::uint64_t folds() const { return folds_; }

    /** Register observation counters as `cxl.wac.*` telemetry. */
    void registerStats(StatRegistry &reg) const;

    /** Clear everything. */
    void reset();

  private:
    struct PageRecord
    {
        std::uint64_t mask = 0;    //!< Touched-word bits.
        std::uint64_t touches = 0; //!< Sum of saturating word counts.
    };

    WacConfig cfg_;
    std::uint8_t sat_;
    Addr win_base_;
    std::vector<std::uint8_t> counters_; //!< One per word in the window.
    std::unordered_map<Pfn, PageRecord> masks_;
    std::uint64_t observed_ = 0;
    std::uint64_t folds_ = 0;
};

} // namespace m5
