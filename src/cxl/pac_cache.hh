/**
 * @file
 * PAC scalability mode 1 (§3, Scalability): when the 4MB SRAM cannot hold
 * a counter per frame of a large CXL DRAM, the SRAM unit becomes a
 * set-associative *cache* of counters.  On a miss, a victim counter is
 * evicted — its value accumulated into the in-memory access-count table
 * via a D2D write — and the new counter starts at 1.
 *
 * Counting stays exact (cache + table always sum to the true count); the
 * cost is D2D writeback traffic, which this model exposes so the
 * SRAM-size / traffic trade-off can be swept (bench/abl_pac_cache).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "sketch/sorted_topk.hh"

namespace m5 {

/** Counter-cache geometry. */
struct PacCacheConfig
{
    Pfn first_pfn = 0;          //!< First monitored frame.
    std::size_t frames = 0;     //!< Monitored frame count.
    std::size_t cache_entries = 64 * 1024; //!< SRAM counter slots.
    unsigned assoc = 8;
};

/** Exact page-access counting through an SRAM counter cache. */
class PacCacheUnit
{
  public:
    explicit PacCacheUnit(const PacCacheConfig &cfg);

    /** Snoop one access; addresses outside the range are ignored. */
    void observe(Addr pa);

    /** Exact access count (cached + spilled). */
    std::uint64_t count(Pfn pfn) const;

    /** Total observed accesses. */
    std::uint64_t totalAccesses() const { return total_; }

    /** The top-k hottest frames by exact count. */
    std::vector<TopKEntry> topK(std::size_t k) const;

    /** D2D writebacks caused by counter evictions. */
    std::uint64_t evictions() const { return evictions_; }

    /** Counter-cache hits. */
    std::uint64_t hits() const { return hits_; }

    /** Counter-cache misses. */
    std::uint64_t misses() const { return misses_; }

    /** Zero everything. */
    void reset();

  private:
    struct Slot
    {
        Pfn pfn = 0;
        std::uint64_t count = 0;
        std::uint64_t lru = 0;
        bool valid = false;
    };

    bool
    inRange(Pfn pfn) const
    {
        return pfn >= cfg_.first_pfn && pfn < cfg_.first_pfn + cfg_.frames;
    }

    PacCacheConfig cfg_;
    std::uint64_t sets_;
    std::uint64_t tick_ = 0;
    std::vector<Slot> slots_;            //!< sets_ x assoc.
    std::vector<std::uint64_t> table_;   //!< Access-count table (memory).
    std::uint64_t total_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace m5
