#include "cxl/mmio.hh"

#include <vector>

#include "common/logging.hh"

namespace m5 {

MmioWindow::MmioWindow(const MmioConfig &cfg, std::size_t num_counters,
                       CounterReader reader)
    : cfg_(cfg), num_counters_(num_counters),
      per_window_(cfg.window_bytes / cfg.counter_bytes),
      reader_(std::move(reader))
{
    m5_assert(per_window_ > 0, "MMIO window smaller than one counter");
    m5_assert(reader_ != nullptr, "MMIO window needs a counter source");
}

std::uint64_t
MmioWindow::read(std::size_t i, Tick &elapsed)
{
    m5_assert(i < num_counters_, "counter index %zu out of range", i);
    const std::size_t base = (i / per_window_) * per_window_;
    if (!window_valid_ || base != window_base_) {
        // Reprogram the base-address configuration register over CXL.io.
        window_base_ = base;
        window_valid_ = true;
        ++switches_;
        elapsed += cfg_.config_write_latency;
    }
    ++reads_;
    elapsed += cfg_.read_latency;
    return reader_(i);
}

Tick
MmioWindow::readAll(std::vector<std::uint64_t> &out)
{
    out.resize(num_counters_);
    Tick elapsed = 0;
    for (std::size_t i = 0; i < num_counters_; ++i)
        out[i] = read(i, elapsed);
    return elapsed;
}

} // namespace m5
