#include "cxl/wac.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"

namespace m5 {

WacUnit::WacUnit(const WacConfig &cfg)
    : cfg_(cfg),
      sat_(static_cast<std::uint8_t>((1u << cfg.counter_bits) - 1)),
      win_base_(cfg.range_base),
      counters_(std::min(cfg.window_bytes, cfg.range_bytes) / kWordBytes, 0)
{
    m5_assert(cfg.range_bytes > 0, "WAC needs a non-empty range");
    m5_assert(cfg.counter_bits >= 1 && cfg.counter_bits <= 8,
              "WAC counters are 1..8 bits");
    m5_assert((cfg.window_bytes % kPageBytes) == 0,
              "WAC window must be page-aligned");
}

void
WacUnit::observe(Addr pa)
{
    if (pa < win_base_ || pa >= win_base_ + counters_.size() * kWordBytes)
        return;
    ++observed_;
    std::uint8_t &c = counters_[(pa - win_base_) >> kWordShift];
    if (c < sat_)
        ++c;
}

void
WacUnit::fold()
{
    ++folds_;
    const std::size_t words = counters_.size();
    for (std::size_t w = 0; w < words; ++w) {
        if (!counters_[w])
            continue;
        const Addr pa = win_base_ + w * kWordBytes;
        PageRecord &rec = masks_[pfnOf(pa)];
        rec.mask |= 1ULL << wordInPage(pa);
        rec.touches += counters_[w];
    }
}

void
WacUnit::advanceWindow()
{
    fold();
    std::fill(counters_.begin(), counters_.end(), 0);
    win_base_ += counters_.size() * kWordBytes;
    if (win_base_ >= cfg_.range_base + cfg_.range_bytes)
        win_base_ = cfg_.range_base;
}

unsigned
WacUnit::uniqueWords(Pfn pfn) const
{
    auto it = masks_.find(pfn);
    return it == masks_.end()
        ? 0u : static_cast<unsigned>(std::popcount(it->second.mask));
}

std::uint64_t
WacUnit::wordMask(Pfn pfn) const
{
    auto it = masks_.find(pfn);
    return it == masks_.end() ? 0 : it->second.mask;
}

std::uint64_t
WacUnit::touches(Pfn pfn) const
{
    auto it = masks_.find(pfn);
    return it == masks_.end() ? 0 : it->second.touches;
}

std::uint64_t
WacUnit::wordCount(WordAddr word) const
{
    const Addr pa = word << kWordShift;
    if (pa < win_base_ || pa >= win_base_ + counters_.size() * kWordBytes)
        return 0;
    return counters_[(pa - win_base_) >> kWordShift];
}

std::vector<std::pair<Pfn, unsigned>>
WacUnit::pagesWithUniqueWords(std::uint64_t min_touches) const
{
    std::vector<std::pair<Pfn, unsigned>> out;
    out.reserve(masks_.size());
    for (const auto &[pfn, rec] : masks_) {
        // A page counts as well-sampled when it accumulated min_touches,
        // or when every touched word's 4-bit counter saturated (a sparse
        // page physically cannot accumulate more).
        const auto words =
            static_cast<std::uint64_t>(std::popcount(rec.mask));
        const std::uint64_t needed =
            std::min<std::uint64_t>(min_touches,
                                    words * static_cast<std::uint64_t>(
                                        sat_));
        if (rec.touches >= needed) {
            out.emplace_back(pfn, static_cast<unsigned>(words));
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

void
WacUnit::reset()
{
    std::fill(counters_.begin(), counters_.end(), 0);
    masks_.clear();
    win_base_ = cfg_.range_base;
    observed_ = 0;
    folds_ = 0;
}

void
WacUnit::registerStats(StatRegistry &reg) const
{
    reg.addCounter("cxl.wac.observed", &observed_);
    reg.addCounter("cxl.wac.folds", &folds_);
}

} // namespace m5
