#include "cxl/pac_cache.hh"

#include <algorithm>

#include "common/logging.hh"

namespace m5 {

PacCacheUnit::PacCacheUnit(const PacCacheConfig &cfg)
    : cfg_(cfg), table_(cfg.frames, 0)
{
    m5_assert(cfg.frames > 0, "PAC cache needs a frame range");
    m5_assert(cfg.assoc > 0 && cfg.cache_entries >= cfg.assoc,
              "bad PAC cache geometry");
    sets_ = cfg.cache_entries / cfg.assoc;
    while (sets_ & (sets_ - 1))
        sets_ &= sets_ - 1;
    slots_.assign(sets_ * cfg.assoc, Slot{});
}

void
PacCacheUnit::observe(Addr pa)
{
    const Pfn pfn = pfnOf(pa);
    if (!inRange(pfn))
        return;
    ++total_;
    ++tick_;

    Slot *set = &slots_[(pfn & (sets_ - 1)) * cfg_.assoc];
    Slot *victim = &set[0];
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        Slot &s = set[w];
        if (s.valid && s.pfn == pfn) {
            ++s.count;
            s.lru = tick_;
            ++hits_;
            return;
        }
        if (!victim->valid)
            continue;
        if (!s.valid || s.lru < victim->lru)
            victim = &s;
    }

    ++misses_;
    if (victim->valid) {
        // D2D writeback: accumulate into the access-count table.
        table_[victim->pfn - cfg_.first_pfn] += victim->count;
        ++evictions_;
    }
    victim->pfn = pfn;
    victim->count = 1;
    victim->lru = tick_;
    victim->valid = true;
}

std::uint64_t
PacCacheUnit::count(Pfn pfn) const
{
    if (!inRange(pfn))
        return 0;
    std::uint64_t c = table_[pfn - cfg_.first_pfn];
    const Slot *set = &slots_[(pfn & (sets_ - 1)) * cfg_.assoc];
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        if (set[w].valid && set[w].pfn == pfn) {
            c += set[w].count;
            break;
        }
    }
    return c;
}

std::vector<TopKEntry>
PacCacheUnit::topK(std::size_t k) const
{
    std::vector<TopKEntry> all;
    for (std::size_t i = 0; i < cfg_.frames; ++i) {
        const std::uint64_t c = count(cfg_.first_pfn + i);
        if (c)
            all.push_back({cfg_.first_pfn + i, c});
    }
    std::sort(all.begin(), all.end(),
        [](const TopKEntry &a, const TopKEntry &b) {
            if (a.count != b.count)
                return a.count > b.count;
            return a.tag < b.tag;
        });
    if (all.size() > k)
        all.resize(k);
    return all;
}

void
PacCacheUnit::reset()
{
    std::fill(table_.begin(), table_.end(), 0);
    slots_.assign(slots_.size(), Slot{});
    total_ = 0;
    evictions_ = 0;
    hits_ = 0;
    misses_ = 0;
    tick_ = 0;
}

} // namespace m5
