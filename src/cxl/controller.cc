#include "cxl/controller.hh"

#include "common/logging.hh"

namespace m5 {

CxlController::CxlController(const CxlControllerConfig &cfg)
{
    if (cfg.pac)
        pac_ = std::make_unique<PacUnit>(*cfg.pac);
    if (cfg.wac)
        wac_ = std::make_unique<WacUnit>(*cfg.wac);
    if (cfg.hpt)
        hpt_ = std::make_unique<HptUnit>(*cfg.hpt);
    if (cfg.hwt)
        hwt_ = std::make_unique<HwtUnit>(*cfg.hwt);
}

void
CxlController::observe(Addr pa, bool is_write, Tick now)
{
    (void)is_write;
    ++snooped_;
    if (pac_)
        pac_->observe(pa);
    if (wac_)
        wac_->observe(pa);
    if (hpt_)
        hpt_->observe(pa, now);
    if (hwt_)
        hwt_->observe(pa, now);
}

MemObserver
CxlController::observer()
{
    return [this](Addr pa, bool is_write, Tick now) {
        observe(pa, is_write, now);
    };
}

PacUnit &
CxlController::pac()
{
    m5_assert(pac_ != nullptr, "PAC not configured");
    return *pac_;
}

WacUnit &
CxlController::wac()
{
    m5_assert(wac_ != nullptr, "WAC not configured");
    return *wac_;
}

HptUnit &
CxlController::hpt()
{
    m5_assert(hpt_ != nullptr, "HPT not configured");
    return *hpt_;
}

HwtUnit &
CxlController::hwt()
{
    m5_assert(hwt_ != nullptr, "HWT not configured");
    return *hwt_;
}

void
CxlController::registerStats(StatRegistry &reg, bool faults_active) const
{
    reg.addCounter("cxl.ctrl.snooped", &snooped_);
    if (faults_active)
        reg.addCounter("cxl.ctrl.mmio_timeouts", &mmio_timeouts_);
    if (pac_)
        pac_->registerStats(reg);
    if (wac_)
        wac_->registerStats(reg);
    if (hpt_)
        hpt_->registerStats(reg);
    if (hwt_)
        hwt_->registerStats(reg);
}

} // namespace m5
