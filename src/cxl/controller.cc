#include "cxl/controller.hh"

#include <string>

#include "common/logging.hh"

namespace m5 {

CxlController::CxlController(const CxlControllerConfig &cfg)
{
    if (cfg.pac)
        pac_ = std::make_unique<PacUnit>(*cfg.pac);
    if (cfg.wac)
        wac_ = std::make_unique<WacUnit>(*cfg.wac);
    if (cfg.hpt)
        hpt_ = std::make_unique<HptUnit>(*cfg.hpt);
    if (cfg.hwt)
        hwt_ = std::make_unique<HwtUnit>(*cfg.hwt);
}

void
CxlController::observe(Addr pa, bool is_write, Tick now)
{
    ++snooped_;
    // Per-tenant attribution snoops the same address stream the AFUs
    // see: PAC-granular read/write charging, plus the WAC-window subset
    // (counted before wac_->observe so "would the WAC count it" is
    // evaluated against the same window state).
    if (!tenant_reads_.empty()) {
        const TenantId t = tenant_resolve_(pfnOf(pa));
        if (t != kNoTenant) {
            if (is_write)
                tenant_writes_[t] += 1;
            else
                tenant_reads_[t] += 1;
            if (wac_ && wac_->inWindow(pa))
                tenant_wac_observed_[t] += 1;
        }
    }
    if (pac_)
        pac_->observe(pa);
    if (wac_)
        wac_->observe(pa);
    if (hpt_)
        hpt_->observe(pa, now);
    if (hwt_)
        hwt_->observe(pa, now);
}

void
CxlController::attachTenantAttribution(std::size_t tenants,
                                       std::function<TenantId(Pfn)> resolve)
{
    m5_assert(tenants > 0, "tenant attribution needs tenants");
    m5_assert(tenant_reads_.empty(), "tenant attribution already armed");
    tenant_resolve_ = std::move(resolve);
    tenant_reads_.assign(tenants, 0);
    tenant_writes_.assign(tenants, 0);
    tenant_wac_observed_.assign(tenants, 0);
}

MemObserver
CxlController::observer()
{
    return [this](Addr pa, bool is_write, Tick now) {
        observe(pa, is_write, now);
    };
}

PacUnit &
CxlController::pac()
{
    m5_assert(pac_ != nullptr, "PAC not configured");
    return *pac_;
}

WacUnit &
CxlController::wac()
{
    m5_assert(wac_ != nullptr, "WAC not configured");
    return *wac_;
}

HptUnit &
CxlController::hpt()
{
    m5_assert(hpt_ != nullptr, "HPT not configured");
    return *hpt_;
}

HwtUnit &
CxlController::hwt()
{
    m5_assert(hwt_ != nullptr, "HWT not configured");
    return *hwt_;
}

void
CxlController::registerStats(StatRegistry &reg, bool faults_active) const
{
    reg.addCounter("cxl.ctrl.snooped", &snooped_);
    if (faults_active)
        reg.addCounter("cxl.ctrl.mmio_timeouts", &mmio_timeouts_);
    // Attribution rows exist only for multi-tenant runs, so a
    // single-tenant run's telemetry JSONL stays byte-identical
    // (docs/MULTITENANT.md).
    for (std::size_t t = 0; t < tenant_reads_.size(); ++t) {
        const std::string p = "tenant." + std::to_string(t) + ".cxl.";
        reg.addCounter(p + "reads", &tenant_reads_[t]);
        reg.addCounter(p + "writes", &tenant_writes_[t]);
        if (wac_)
            reg.addCounter(p + "wac_observed", &tenant_wac_observed_[t]);
    }
    if (pac_)
        pac_->registerStats(reg);
    if (wac_)
        wac_->registerStats(reg);
    if (hpt_)
        hpt_->registerStats(reg);
    if (hwt_)
        hwt_->registerStats(reg);
}

} // namespace m5
